#include "core/mapper.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "align/arena.hpp"
#include "align/banded.hpp"
#include "align/diff_common.hpp"
#include "align/dirs_spill.hpp"
#include "align/fallback.hpp"
#include "base/timer.hpp"
#include "chain/chain.hpp"

namespace manymap {

namespace {

/// Append `piece` to `total` (merging adjacent equal ops).
void append_cigar(Cigar& total, const Cigar& piece) {
  for (const auto& op : piece.ops()) total.push(op.op, op.len);
}

/// DP-cell budget for one inter-anchor gap fill; larger gaps take the
/// advisory banded path (minimap2 would band them too). With auto
/// banding as the default hot path most fills under the cap run banded
/// at O(band*len) anyway, so the cap only bounds the unbanded worst case
/// (off mode, or a band-hit rerun): 2e6 cells is ~0.5 ms. It is sized so
/// the admission estimate (estimate_dirs_bytes) stays dominated by the
/// capped end-extension term for typical long reads (< ~19 kbp).
constexpr u64 kGapCellCap = 2'000'000;
/// Longest unanchored read end that is extension-aligned; longer tails
/// are soft-clipped past this (minimap2's z-drop plays the same role).
constexpr u32 kExtensionCap = 2000;

struct StitchResult {
  Cigar cigar;
  u64 t_begin = 0;  ///< reference start of the alignment
  u32 q_begin = 0;  ///< oriented-query start
  u32 q_end = 0;    ///< oriented-query end (exclusive)
  u64 t_end = 0;    ///< reference end (exclusive)
  u64 cells = 0;
};

}  // namespace

u64 estimate_dirs_bytes(const MapOptions& opt, u64 read_len) {
  if (read_len == 0) return 0;
  // Worst capped end extension: query up to kExtensionCap, target window
  // stretched by the end bonus. Banded options shrink every dirs row to
  // the band width, which dirs_footprint accounts for. Only a fixed band
  // (opt.band > 0) shrinks the estimate: auto mode keeps the unbanded
  // bound, since any segment may rerun unbanded on band_hit and the
  // admission ladder must cover that worst case.
  const u64 ext_q = std::min<u64>(read_len, kExtensionCap);
  const u64 ext_t = ext_q + opt.end_bonus_window;
  const u64 ext_fp = detail::KernelArena::dirs_footprint(
      static_cast<i32>(ext_t), static_cast<i32>(ext_q), opt.band);
  // Worst inter-anchor gap fill: cell count is capped at kGapCellCap
  // (larger gaps take the banded path), each dimension by the read; the
  // per-diagonal lane padding adds at most (t+q)*kLanePad on top. len is
  // u64 end-to-end — kGapCellCap is 2e6, so any len >= 1415 saturates the
  // cell term and len*len is never evaluated where it could overflow.
  const u64 len = read_len;
  u64 gap_cells = len >= 1415 ? kGapCellCap : len * len;
  if (opt.band > 0) {
    const u64 band_rows = 2 * static_cast<u64>(opt.band) + 1;
    gap_cells = std::min(gap_cells, band_rows * std::min<u64>(2 * len, kGapCellCap));
  }
  const u64 gap_fp = gap_cells + 2 * len * detail::kLanePad;
  return std::max(ext_fp, gap_fp);
}

Mapper::Mapper(const Reference& ref, MapOptions opt)
    : Mapper(ref, MinimizerIndex::build(ref, opt.sketch), std::move(opt)) {}

Mapper::Mapper(const Reference& ref, MinimizerIndex index, MapOptions opt)
    : ref_(ref), index_(std::move(index)), opt_(std::move(opt)) {
  max_occ_ = std::min(index_.occurrence_cutoff(opt_.occ_frac), opt_.max_occ_cap);
}

std::vector<Mapping> Mapper::map(const Sequence& read, MapTimings* timings) const {
  MapCall call;
  call.timings = timings;
  return map(read, call);
}

std::vector<Mapping> Mapper::map(const Sequence& read, const MapCall& call) const {
  MapTimings* timings = call.timings;
  const bool with_cigar = opt_.with_cigar && !call.score_only;
  auto check_deadline = [&] {
    if (call.deadline && std::chrono::steady_clock::now() > *call.deadline)
      throw MapDeadlineExceeded();
  };

  std::vector<Mapping> mappings;
  const u32 qlen = static_cast<u32>(read.size());
  if (qlen < opt_.sketch.k) return mappings;

  WallTimer seed_timer;
  const auto query_minimizers = sketch(read.codes, 0, opt_.sketch);
  const auto anchors = collect_anchors(index_, query_minimizers, qlen, max_occ_);
  check_deadline();  // after seeding, before chaining
  auto chains = chain_anchors(anchors, opt_.chain);
  const double seed_chain_s = seed_timer.seconds();
  if (timings != nullptr) timings->seed_chain_seconds += seed_chain_s;
  if (chains.empty()) return mappings;
  check_deadline();  // after chaining, before base-level alignment

  if (chains.size() > opt_.max_mappings) chains.resize(opt_.max_mappings);

  WallTimer align_timer;
  const u32 k = opt_.sketch.k;
  KernelFn kernel = get_diff_kernel(opt_.layout, opt_.isa);
  MM_REQUIRE(kernel != nullptr, "configured kernel unavailable");
  const std::vector<u8> rc = reverse_complement(read.codes);
  u64 total_cells = 0;
  u64 kernel_retries = 0;
  u32 deepest_rung = 0;
  u64 streamed_kernels = 0;
  const u64 spilled_before = detail::dirs_spill_stats().bytes;
  detail::KernelArena& arena =
      call.arena != nullptr ? *call.arena : detail::KernelArena::for_thread();

  // Lazily created spill sink, shared by every streamed kernel of this
  // call (each kernel rewrites from offset 0; reads never cross calls).
  // An in-memory sink is upgraded to a temp file if a later kernel's
  // footprint outgrows the in-memory cap.
  std::unique_ptr<DirsSpill> spill;
  u64 spill_class = 0;  ///< largest footprint the sink was built for
  auto spill_for = [&](u64 footprint) -> DirsSpill* {
    if (spill == nullptr ||
        (spill_class <= kDefaultSpillMemCap && footprint > kDefaultSpillMemCap)) {
      spill = make_dirs_spill(footprint);
    }
    spill_class = std::max(spill_class, footprint);
    return spill.get();
  };

  // Effective banding: a per-call band override (>= 0) pins a fixed band
  // for the whole call (the service degrade ladder does this), taking
  // precedence over the options band_mode; otherwise auto derives a band
  // per segment from chain geometry, fixed uses the static knob, off is
  // unbanded. Auto keeps zdrop off — zdrop results are advisory (not
  // rerun on band_hit), and auto must stay bit-identical to unbanded.
  const BandMode band_mode = call.band >= 0
                                 ? (call.band > 0 ? BandMode::kFixed : BandMode::kOff)
                                 : opt_.band_mode;
  const i32 eff_band = call.band >= 0 ? call.band : opt_.band;
  const i32 eff_zdrop = call.zdrop >= 0 ? call.zdrop : opt_.zdrop;
  u64 band_fallbacks = 0;
  u64 auto_band_kernels = 0;
  u64 auto_band_full = 0;
  u64 auto_band_sum = 0;

  // `band_hint` is the geometry-derived candidate half-width for this
  // segment (consulted only in auto mode, where it is gated on actually
  // narrowing the matrix before the kernel runs banded).
  auto run_kernel = [&](const std::vector<u8>& target, const std::vector<u8>& query,
                        AlignMode mode, i32 band_hint) {
    DiffArgs a;
    a.target = target.data();
    a.tlen = static_cast<i32>(target.size());
    a.query = query.data();
    a.qlen = static_cast<i32>(query.size());
    a.params = opt_.scores;
    a.mode = mode;
    a.with_cigar = with_cigar;
    a.arena = &arena;
    if (band_mode == BandMode::kAuto) {
      a.band = profitable_band(band_hint, target.size(), query.size(), opt_.auto_band);
      a.zdrop = 0;
      if (a.band > 0) {
        ++auto_band_kernels;
        auto_band_sum += static_cast<u64>(a.band);
      } else {
        ++auto_band_full;
      }
    } else {
      a.band = band_mode == BandMode::kFixed ? eff_band : 0;
      a.zdrop = eff_zdrop;
    }
    // Spill config depends on the band (banded dirs rows are O(band), not
    // O(|Q|)), so it is re-derived when the band changes for the rerun.
    auto configure_spill = [&] {
      a.spill = nullptr;
      a.spill_block_rows = 0;
      if (with_cigar && call.dirs_budget_bytes > 0) {
        const u64 fp = detail::KernelArena::dirs_footprint(a.tlen, a.qlen, a.band);
        if (fp > call.dirs_budget_bytes) {
          a.spill = spill_for(fp);
          a.spill_block_rows =
              spill_rows_for_budget(a.tlen, a.qlen, call.dirs_budget_bytes, a.band);
          ++streamed_kernels;
        }
      }
    };
    auto dispatch = [&]() -> AlignResult {
      if (call.kernel_override != nullptr && *call.kernel_override)
        return (*call.kernel_override)(a);
      if (opt_.kernel_override) return opt_.kernel_override(a);
      FallbackOutcome fo;
      AlignResult r = align_with_fallback(a, kernel, opt_.layout, &fo);
      kernel_retries += fo.failed_attempts;
      deepest_rung = std::max(deepest_rung, fo.rung);
      return r;
    };
    configure_spill();
    AlignResult r;
    if (a.band > 0) {
      // Auto-full fallback: a banded kernel that cannot prove its answer
      // optimal (band_hit flag, or a backtrack that left the band) is
      // rerun unbanded, so mapping results never depend on the band.
      bool retry_full = false;
      try {
        r = dispatch();
        total_cells += r.cells;
        retry_full = r.band_hit;
      } catch (const BandHitError&) {
        retry_full = true;
      }
      if (retry_full) {
        ++band_fallbacks;
        if (std::getenv("MM_BAND_DEBUG"))
          std::fprintf(stderr, "[band-fallback] mode=%d tlen=%d qlen=%d band=%d\n",
                       static_cast<int>(mode), a.tlen, a.qlen, band_hint);
        a.band = 0;
        a.zdrop = 0;
        configure_spill();
        r = dispatch();
        total_cells += r.cells;
      }
    } else {
      r = dispatch();
      total_cells += r.cells;
    }
    return r;
  };

  for (const auto& chain : chains) {
    check_deadline();  // per-chain: a slow alignment gives up between chains
    const auto& q = chain.rev ? rc : read.codes;
    const auto& contig = ref_.contig(chain.rid);
    StitchResult s;

    // Anchors per spanned base — the chain's own estimate of how clean the
    // read is, consulted by the extension band estimator (clean reads keep
    // long extensions ledger-provable inside a band; noisy ones do not).
    // The policy floors the span so a short spurious chain cannot certify
    // the read as clean and band a doomed long noisy tail.
    const u64 span = std::max<u64>(
        {chain.tend() - chain.tstart() + 1,
         static_cast<u64>(chain.qend()) - chain.qstart() + 1, 1});
    const double anchor_density =
        chain_anchor_density(chain.anchors.size(), span, opt_.auto_band);

    // --- middle: anchored k-mer + gap fills between consecutive anchors ---
    const Anchor& first = chain.anchors.front();
    s.cigar.push('M', k);  // first anchor's k-mer matches exactly
    u64 t_cursor = first.tpos + 1;  // one past the last aligned ref base
    u32 q_cursor = first.qpos + 1;
    for (std::size_t i = 1; i < chain.anchors.size(); ++i) {
      const Anchor& a = chain.anchors[i];
      const u64 dt = a.tpos + 1 - t_cursor;
      const u32 dq = a.qpos + 1 - q_cursor;
      if (dt == dq && dt <= k) {
        // k-mers overlap or touch: the in-between bases are inside the
        // matching k-mer of anchor i -> exact matches.
        s.cigar.push('M', static_cast<u32>(dt));
      } else {
        // The gap band candidate: measured per-gap diagonal drift (the
        // net indel imbalance this fill must absorb) plus slack and an
        // indel-rate headroom — not a global constant.
        const u32 drift = static_cast<u32>(dt > dq ? dt - dq : static_cast<u64>(dq) - dt);
        const i32 geo_band = auto_band_for_gap(dt, dq, drift, opt_.auto_band);
        const auto target = ref_.extract(chain.rid, t_cursor, dt);
        const std::vector<u8> query(q.begin() + q_cursor, q.begin() + q_cursor + dq);
        const i32 gap_band = band_mode == BandMode::kFixed ? eff_band : geo_band;
        if (dt * dq > kGapCellCap &&
            profitable_band(gap_band, dt, dq, opt_.auto_band) > 0) {
          // Very large inter-anchor gap (a repeat-masked desert): band the
          // fill like minimap2 does, O(gap * band) instead of O(dt*dq).
          // Off and auto modes use the same geometry-derived band so auto
          // output stays byte-identical to unbanded mapping; an explicit
          // fixed band keeps overriding it. When the gap geometry exceeds
          // what a band can exclude, fall through to the normal kernel.
          BandedArgs ba;
          ba.target = target.data();
          ba.tlen = static_cast<i32>(target.size());
          ba.query = query.data();
          ba.qlen = static_cast<i32>(query.size());
          ba.params = opt_.scores;
          ba.band = gap_band;
          ba.with_cigar = with_cigar;
          const auto r = banded_global_align(ba);
          total_cells += r.cells;
          append_cigar(s.cigar, r.cigar);
        } else {
          const auto r = run_kernel(target, query, AlignMode::kGlobal, geo_band);
          append_cigar(s.cigar, r.cigar);
        }
      }
      t_cursor = a.tpos + 1;
      q_cursor = a.qpos + 1;
    }

    // --- left extension: before the first anchor's k-mer ---
    const u64 kmer_t_start = first.tpos + 1 - k;
    const u32 kmer_q_start = first.qpos + 1 - k;
    s.t_begin = kmer_t_start;
    s.q_begin = kmer_q_start;
    if (kmer_q_start > 0 && kmer_t_start > 0) {
      // Bound the extension like minimap2's z-drop does: beyond ~2 kbp of
      // unanchored sequence the tail is left soft-clipped.
      const u32 ext = std::min<u32>(kmer_q_start, kExtensionCap);
      const u64 window =
          std::min<u64>(kmer_t_start, static_cast<u64>(ext) + opt_.end_bonus_window);
      std::vector<u8> target = ref_.extract(chain.rid, kmer_t_start - window, window);
      std::reverse(target.begin(), target.end());
      std::vector<u8> query(q.rend() - kmer_q_start, q.rend() - kmer_q_start + ext);
      const auto r = run_kernel(
          target, query, AlignMode::kExtension,
          auto_band_for_extension(window, ext, anchor_density, opt_.auto_band));
      if (r.q_end >= 0) {
        Cigar left = r.cigar;
        left.reverse();
        Cigar merged;
        append_cigar(merged, left);
        append_cigar(merged, s.cigar);
        s.cigar = std::move(merged);
        s.t_begin = kmer_t_start - static_cast<u64>(r.t_end + 1);
        s.q_begin = kmer_q_start - static_cast<u32>(r.q_end + 1);
      }
    }

    // --- right extension: after the last anchor's k-mer ---
    const Anchor& last = chain.anchors.back();
    s.t_end = last.tpos + 1;
    s.q_end = last.qpos + 1;
    if (s.q_end < qlen && s.t_end < contig.size()) {
      const u32 tail = std::min<u32>(qlen - s.q_end, kExtensionCap);
      const u64 window =
          std::min<u64>(contig.size() - s.t_end, static_cast<u64>(tail) + opt_.end_bonus_window);
      const auto target = ref_.extract(chain.rid, s.t_end, window);
      const std::vector<u8> query(q.begin() + s.q_end, q.begin() + s.q_end + tail);
      const auto r = run_kernel(
          target, query, AlignMode::kExtension,
          auto_band_for_extension(window, tail, anchor_density, opt_.auto_band));
      if (r.q_end >= 0) {
        append_cigar(s.cigar, r.cigar);
        s.t_end += static_cast<u64>(r.t_end + 1);
        s.q_end += static_cast<u32>(r.q_end + 1);
      }
    }

    // --- assemble the mapping record ---
    Mapping m;
    m.qname = read.name;
    m.qlen = qlen;
    m.rev = chain.rev;
    m.rid = chain.rid;
    m.rname = contig.name;
    m.rlen = contig.size();
    m.tstart = s.t_begin;
    m.tend = s.t_end;
    m.chain_score = chain.score;
    m.primary = chain.primary;
    if (chain.rev) {  // oriented -> original read coordinates
      m.qstart = qlen - s.q_end;
      m.qend = qlen - s.q_begin;
    } else {
      m.qstart = s.q_begin;
      m.qend = s.q_end;
    }
    if (with_cigar) {
      m.cigar = std::move(s.cigar);
      // Exact rescoring and match counting from the final path.
      m.score = m.cigar.score(contig.codes, q, s.t_begin, s.q_begin, opt_.scores);
      u64 ti = s.t_begin;
      u32 qi = s.q_begin;
      for (const auto& op : m.cigar.ops()) {
        m.align_length += op.len;
        if (op.op == 'M') {
          for (u32 x = 0; x < op.len; ++x)
            if (contig.codes[ti + x] == q[qi + x] && contig.codes[ti + x] < 4) ++m.matches;
          ti += op.len;
          qi += op.len;
        } else if (op.op == 'D') {
          ti += op.len;
        } else {
          qi += op.len;
        }
      }
    } else {
      m.score = chain.score;
      m.align_length = std::max<u64>(m.tend - m.tstart, m.qend - m.qstart);
      m.matches = static_cast<u64>(chain.anchors.size()) * k;
    }
    mappings.push_back(std::move(m));
  }

  // Re-rank candidates by the exact DP score of the stitched alignment
  // (chain scores cannot separate near-identical repeat copies; the
  // base-level score can) and re-derive primary/secondary flags.
  if (with_cigar && mappings.size() > 1) {
    std::stable_sort(mappings.begin(), mappings.end(),
                     [](const Mapping& x, const Mapping& y) { return x.score > y.score; });
    for (std::size_t i = 0; i < mappings.size(); ++i) {
      mappings[i].primary = true;
      for (std::size_t j = 0; j < i; ++j) {
        const u32 lo = std::max(mappings[i].qstart, mappings[j].qstart);
        const u32 hi = std::min(mappings[i].qend, mappings[j].qend);
        if (lo >= hi) continue;
        const u32 shorter = std::min(mappings[i].qend - mappings[i].qstart,
                                     mappings[j].qend - mappings[j].qstart);
        if (shorter > 0 && static_cast<double>(hi - lo) / shorter > 0.5) {
          mappings[i].primary = false;
          break;
        }
      }
    }
  }

  // MAPQ from the top-two chain scores (minimap2-flavoured heuristic).
  if (!mappings.empty()) {
    const double f1 = static_cast<double>(mappings[0].chain_score);
    const double f2 = mappings.size() > 1 ? static_cast<double>(mappings[1].chain_score) : 0.0;
    for (auto& m : mappings) {
      if (!m.primary) {
        m.mapq = 0;
        continue;
      }
      const double uniq = f1 > 0 ? 1.0 - f2 / f1 : 0.0;
      const double cnt = std::min(1.0, static_cast<double>(m.cigar.ops().size() + 10) / 20.0);
      m.mapq = static_cast<u32>(std::clamp(60.0 * uniq * cnt, 0.0, 60.0));
    }
  }

  if (timings != nullptr) {
    timings->align_seconds += align_timer.seconds();
    timings->dp_cells += total_cells;
    timings->kernel_retries += kernel_retries;
    timings->deepest_fallback_rung = std::max(timings->deepest_fallback_rung, deepest_rung);
    timings->streamed_kernels += streamed_kernels;
    timings->dirs_spilled_bytes += detail::dirs_spill_stats().bytes - spilled_before;
    timings->band_fallbacks += band_fallbacks;
    timings->auto_band_kernels += auto_band_kernels;
    timings->auto_band_full += auto_band_full;
    timings->auto_band_sum += auto_band_sum;
  }
  return mappings;
}

}  // namespace manymap
