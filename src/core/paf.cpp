#include "core/paf.hpp"

#include <sstream>

namespace manymap {

std::string to_paf(const Mapping& m, bool with_cigar) {
  std::ostringstream os;
  os << m.qname << '\t' << m.qlen << '\t' << m.qstart << '\t' << m.qend << '\t'
     << (m.rev ? '-' : '+') << '\t' << m.rname << '\t' << m.rlen << '\t' << m.tstart << '\t'
     << m.tend << '\t' << m.matches << '\t' << m.align_length << '\t' << m.mapq << "\ttp:A:"
     << (m.primary ? 'P' : 'S') << "\ts1:i:" << m.chain_score << "\tAS:i:" << m.score;
  if (with_cigar && !m.cigar.empty()) os << "\tcg:Z:" << m.cigar.to_string();
  return os.str();
}

std::string to_paf_block(const std::vector<Mapping>& mappings, bool with_cigar) {
  std::string out;
  for (const auto& m : mappings) {
    out += to_paf(m, with_cigar);
    out += '\n';
  }
  return out;
}

PafRecord parse_paf_line(const std::string& line) {
  std::istringstream is(line);
  PafRecord r;
  std::string strand;
  is >> r.qname >> r.qlen >> r.qstart >> r.qend >> strand >> r.tname >> r.tlen >> r.tstart >>
      r.tend >> r.matches >> r.align_length >> r.mapq;
  MM_REQUIRE(!is.fail(), "malformed PAF line");
  MM_REQUIRE(strand == "+" || strand == "-", "bad strand field");
  r.rev = strand == "-";
  return r;
}

}  // namespace manymap
