// manymap's top-level public API: build (or load) an index over a
// reference, then map reads — one at a time or in batches through the
// §4.4.4 pipelines.
//
// Quick start:
//   Reference ref = ...;
//   Aligner aligner(ref, MapOptions::map_pb());
//   auto mappings = aligner.map_read(read);
//   std::cout << to_paf_block(mappings);
#pragma once

#include "core/mapper.hpp"
#include "core/paf.hpp"
#include "pipeline/pipeline.hpp"

namespace manymap {

enum class PipelineKind { kMinimap2, kManymap };

class Aligner {
 public:
  Aligner(const Reference& ref, MapOptions opt) : mapper_(ref, std::move(opt)) {}
  Aligner(const Reference& ref, MinimizerIndex index, MapOptions opt)
      : mapper_(ref, std::move(index), std::move(opt)) {}

  /// Map a single read (mappings best-first).
  std::vector<Mapping> map_read(const Sequence& read, MapTimings* timings = nullptr) const {
    return mapper_.map(read, timings);
  }

  struct BatchResult {
    std::string paf;  ///< PAF lines for all reads, input order
    PipelineStats stats;
  };

  /// Map many reads through one of the two pipeline architectures.
  BatchResult map_reads(std::vector<Sequence> reads, PipelineKind pipeline, u32 compute_threads,
                        u64 batch_bases = 2'000'000) const;

  const Mapper& mapper() const { return mapper_; }

 private:
  Mapper mapper_;
};

}  // namespace manymap
