#include "core/sam.hpp"

#include <algorithm>
#include <sstream>

namespace manymap {

std::string sam_header(const Reference& ref, const std::string& program_name) {
  std::ostringstream os;
  os << "@HD\tVN:1.6\tSO:unknown\n";
  for (std::size_t i = 0; i < ref.num_contigs(); ++i)
    os << "@SQ\tSN:" << ref.contig(i).name << "\tLN:" << ref.contig(i).size() << "\n";
  os << "@PG\tID:" << program_name << "\tPN:" << program_name << "\n";
  return os.str();
}

namespace {

/// CIGAR with soft clips for the unaligned read ends, on the record's
/// strand (clip lengths swap for reverse-strand records).
std::string sam_cigar(const Mapping& m) {
  const u32 left = m.rev ? m.qlen - m.qend : m.qstart;
  const u32 right = m.rev ? m.qstart : m.qlen - m.qend;
  std::string s;
  if (left > 0) s += std::to_string(left) + "S";
  s += m.cigar.empty() ? std::to_string(m.qend - m.qstart) + "M" : m.cigar.to_string();
  if (right > 0) s += std::to_string(right) + "S";
  return s;
}

}  // namespace

std::string to_sam(const Mapping& m, const Sequence& read) {
  u32 flag = 0;
  if (m.rev) flag |= kSamReverse;
  if (!m.primary) flag |= kSamSecondary;
  const std::string seq =
      m.rev ? decode_dna(reverse_complement(read.codes)) : read.to_ascii();
  std::string qual = read.qual.size() == read.size() ? read.qual : "*";
  if (m.rev && qual != "*") std::reverse(qual.begin(), qual.end());

  std::ostringstream os;
  os << m.qname << '\t' << flag << '\t' << m.rname << '\t' << (m.tstart + 1) << '\t' << m.mapq
     << '\t' << sam_cigar(m) << '\t' << "*\t0\t0\t" << seq << '\t' << qual
     << "\tAS:i:" << m.score << "\tNM:i:" << (m.align_length - m.matches) << "\ttp:A:"
     << (m.primary ? 'P' : 'S');
  return os.str();
}

std::string to_sam_unmapped(const Sequence& read) {
  std::ostringstream os;
  os << read.name << '\t' << kSamUnmapped << "\t*\t0\t0\t*\t*\t0\t0\t" << read.to_ascii()
     << '\t' << (read.qual.size() == read.size() ? read.qual : "*");
  return os.str();
}

std::string to_sam_block(const std::vector<Mapping>& mappings, const Sequence& read) {
  if (mappings.empty()) return to_sam_unmapped(read) + "\n";
  std::string out;
  for (const auto& m : mappings) {
    out += to_sam(m, read);
    out += '\n';
  }
  return out;
}

}  // namespace manymap
