// End-to-end long-read mapper: seed (minimizers) -> chain -> extend
// (base-level alignment with the difference-based kernels). This is the
// seed-chain-extend workflow of §3.1 with manymap's kernels plugged into
// the align step.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "sequence/sequence.hpp"

namespace manymap {

struct Mapping {
  std::string qname;
  u32 qlen = 0;
  u32 qstart = 0;  ///< 0-based, on the original read strand
  u32 qend = 0;    ///< exclusive
  bool rev = false;
  u32 rid = 0;
  std::string rname;
  u64 rlen = 0;
  u64 tstart = 0;  ///< 0-based reference start
  u64 tend = 0;    ///< exclusive
  i64 score = 0;   ///< DP score of the stitched alignment
  i32 chain_score = 0;
  u32 mapq = 0;
  bool primary = true;
  u64 matches = 0;      ///< exactly matching bases
  u64 align_length = 0; ///< alignment columns (M+I+D)
  Cigar cigar;

  double identity() const {
    return align_length == 0 ? 0.0
                             : static_cast<double>(matches) / static_cast<double>(align_length);
  }
};

/// Per-read stage timing accumulation (Table 2 / Fig. 11 instrumentation),
/// plus fallback-ladder accounting (which rung answered, see
/// align/fallback.hpp).
struct MapTimings {
  double seed_chain_seconds = 0.0;
  double align_seconds = 0.0;
  u64 dp_cells = 0;
  u64 kernel_retries = 0;          ///< failed kernel attempts absorbed
  u32 deepest_fallback_rung = 0;   ///< 0 = dispatched, 1 = scalar, 2 = banded ref
  u64 streamed_kernels = 0;        ///< kernel calls run with streamed dirs
  u64 dirs_spilled_bytes = 0;      ///< direction bytes written to spill sinks
  u64 band_fallbacks = 0;          ///< banded kernels rerun unbanded on band_hit
  // Auto-band accounting (band_mode == kAuto): every run_kernel call either
  // runs with a geometry-selected band (auto_band_kernels, band widths
  // accumulated in auto_band_sum so mean = sum / kernels) or deliberately
  // runs full because the band would not pay off (auto_band_full). Of the
  // banded ones, band_fallbacks counts the band_hit reruns — the observable
  // miss rate of the estimator.
  u64 auto_band_kernels = 0;  ///< kernel calls run with an auto-selected band
  u64 auto_band_full = 0;     ///< auto-mode calls that chose the full kernel
  u64 auto_band_sum = 0;      ///< sum of auto-selected band half-widths

  MapTimings& operator+=(const MapTimings& o) {
    seed_chain_seconds += o.seed_chain_seconds;
    align_seconds += o.align_seconds;
    dp_cells += o.dp_cells;
    kernel_retries += o.kernel_retries;
    band_fallbacks += o.band_fallbacks;
    auto_band_kernels += o.auto_band_kernels;
    auto_band_full += o.auto_band_full;
    auto_band_sum += o.auto_band_sum;
    deepest_fallback_rung = deepest_fallback_rung > o.deepest_fallback_rung
                                ? deepest_fallback_rung
                                : o.deepest_fallback_rung;
    streamed_kernels += o.streamed_kernels;
    dirs_spilled_bytes += o.dirs_spilled_bytes;
    return *this;
  }
};

/// Thrown by Mapper::map when a MapCall deadline expires mid-compute; the
/// cooperative checks sit between the seed/chain/align stages so a slow
/// alignment cannot blow past its deadline by more than one stage.
class MapDeadlineExceeded : public std::runtime_error {
 public:
  MapDeadlineExceeded() : std::runtime_error("map deadline exceeded") {}
};

/// Per-call context for Mapper::map.
struct MapCall {
  MapTimings* timings = nullptr;
  /// Cooperative deadline: checked between pipeline stages, throws
  /// MapDeadlineExceeded when exceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Degraded mode: skip base-level CIGAR alignment scoring even when
  /// the options request it (chain-derived scores only).
  bool score_only = false;
  /// Reusable DP workspace for every kernel invocation of this call.
  /// nullptr selects the calling thread's shared arena
  /// (detail::KernelArena::for_thread()), so repeated maps on one thread
  /// never re-allocate; service workers pass their own arena explicitly.
  detail::KernelArena* arena = nullptr;
  /// Per-call resident ceiling for direction bytes. Any single kernel
  /// whose dirs footprint (KernelArena::dirs_footprint) exceeds this runs
  /// with diagonal-block dirs streaming (align/dirs_spill.hpp): peak
  /// resident dirs stay within the budget while finished blocks spill to
  /// an in-memory or temp-file sink. 0 keeps the fully resident path.
  u64 dirs_budget_bytes = 0;
  /// Per-call kernel override, taking precedence over
  /// MapOptions::kernel_override: the service's device-offload path routes
  /// one call's DP segments through the simulated GPU while the shared
  /// Mapper stays CPU-configured. Like the options-level override it
  /// BYPASSES the fallback ladder — the callee owns failure recovery.
  /// Non-owning; must outlive the map() call.
  const std::function<AlignResult(const DiffArgs&)>* kernel_override = nullptr;
  /// Band half-width / zdrop overrides for this call; -1 inherits the
  /// MapOptions band_mode/band/zdrop, 0 forces unbanded, N > 0 forces a
  /// static band — an explicit override takes precedence over auto mode.
  /// The service degrade ladder uses these to pin narrow bands under
  /// memory pressure without rebuilding the shared Mapper.
  i32 band = -1;
  i32 zdrop = -1;
};

/// Pessimistic upper bound on the resident direction-byte footprint one
/// Mapper::map(read) holds at any instant. Kernels run serially within a
/// call, so this is the worst single kernel: either a capped end
/// extension or a capped inter-anchor gap fill (larger gaps are banded
/// and never hold an O(t*q) dirs area). Used by the service layer for
/// footprint-aware admission. Takes the read length as u64 end-to-end: a
/// pathological multi-GiB read must inflate the estimate (and be rejected
/// at admission), not wrap a u32 and sneak under the memory ladder.
u64 estimate_dirs_bytes(const MapOptions& opt, u64 read_len);

class Mapper {
 public:
  /// Build the index from the reference (kept by reference; must outlive
  /// the mapper).
  Mapper(const Reference& ref, MapOptions opt);
  /// Use a prebuilt/loaded index (it must describe `ref`).
  Mapper(const Reference& ref, MinimizerIndex index, MapOptions opt);

  /// Map one read; mappings sorted best-first. Optionally accumulates
  /// stage timings.
  std::vector<Mapping> map(const Sequence& read, MapTimings* timings = nullptr) const;
  /// Map with a per-call context (deadline, degraded mode, timings).
  std::vector<Mapping> map(const Sequence& read, const MapCall& call) const;

  const Reference& reference() const { return ref_; }
  const MinimizerIndex& index() const { return index_; }
  const MapOptions& options() const { return opt_; }
  u32 max_occ() const { return max_occ_; }

 private:
  const Reference& ref_;
  MinimizerIndex index_;
  MapOptions opt_;
  u32 max_occ_ = 0;
};

}  // namespace manymap
