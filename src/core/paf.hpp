// PAF (Pairwise mApping Format) output, minimap2's default format.
#pragma once

#include <string>
#include <vector>

#include "core/mapper.hpp"

namespace manymap {

/// One PAF line (no trailing newline). `with_cigar` appends a cg:Z: tag.
std::string to_paf(const Mapping& m, bool with_cigar = false);

/// All mappings of a read, one line each, newline-terminated.
std::string to_paf_block(const std::vector<Mapping>& mappings, bool with_cigar = false);

/// Parse the 12 mandatory fields back (used by accuracy tooling/tests).
struct PafRecord {
  std::string qname;
  u64 qlen = 0, qstart = 0, qend = 0;
  bool rev = false;
  std::string tname;
  u64 tlen = 0, tstart = 0, tend = 0;
  u64 matches = 0, align_length = 0;
  u32 mapq = 0;
};
PafRecord parse_paf_line(const std::string& line);

}  // namespace manymap
