#include "core/options.hpp"

namespace manymap {

MapOptions MapOptions::map_pb() {
  MapOptions o;
  o.sketch = SketchParams{15, 10};  // minimap2 map-pb: -k15 -w10 (HPC omitted)
  o.scores = ScoreParams::map_pb();
  o.chain.seed_length = o.sketch.k;
  o.isa = best_isa();
  return o;
}

MapOptions MapOptions::map_ont() {
  MapOptions o;
  o.sketch = SketchParams{15, 10};
  o.scores = ScoreParams::map_ont();
  o.chain.seed_length = o.sketch.k;
  o.isa = best_isa();
  return o;
}

}  // namespace manymap
