#include "core/options.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace manymap {

MapOptions MapOptions::map_pb() {
  MapOptions o;
  o.sketch = SketchParams{15, 10};  // minimap2 map-pb: -k15 -w10 (HPC omitted)
  o.scores = ScoreParams::map_pb();
  o.chain.seed_length = o.sketch.k;
  o.isa = best_isa();
  return o;
}

MapOptions MapOptions::map_ont() {
  MapOptions o;
  o.sketch = SketchParams{15, 10};
  o.scores = ScoreParams::map_ont();
  o.chain.seed_length = o.sketch.k;
  o.isa = best_isa();
  return o;
}

std::optional<MapOptions> preset_by_name(std::string_view name) {
  if (name == "map-pb") return MapOptions::map_pb();
  if (name == "map-ont") return MapOptions::map_ont();
  return std::nullopt;
}

bool apply_layout_name(MapOptions& opt, std::string_view name) {
  if (name == "manymap") {
    opt.layout = Layout::kManymap;
  } else if (name == "minimap2") {
    opt.layout = Layout::kMinimap2;
  } else {
    return false;
  }
  return true;
}

bool apply_isa_name(MapOptions& opt, std::string_view name) {
  Isa isa;
  if (name == "scalar") isa = Isa::kScalar;
  else if (name == "sse2") isa = Isa::kSse2;
  else if (name == "avx2") isa = Isa::kAvx2;
  else if (name == "avx512") isa = Isa::kAvx512;
  else return false;
  if (get_diff_kernel(opt.layout, isa) == nullptr) return false;
  opt.isa = isa;
  return true;
}

bool apply_band_option(MapOptions& opt, std::string_view text) {
  if (text == "auto") {
    opt.band_mode = BandMode::kAuto;
    opt.band = 0;
    return true;
  }
  const auto v = parse_int(text);
  if (!v || *v < 0 || *v > INT32_MAX) return false;
  opt.band = static_cast<i32>(*v);
  opt.band_mode = opt.band > 0 ? BandMode::kFixed : BandMode::kOff;
  return true;
}

bool apply_zdrop_option(MapOptions& opt, std::string_view text) {
  const auto v = parse_int(text);
  if (!v || *v < 0 || *v > INT32_MAX) return false;
  opt.zdrop = static_cast<i32>(*v);
  return true;
}

std::optional<i64> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string owned(text);  // strtoll needs NUL termination
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(owned.c_str(), &end, 10);
  if (errno == ERANGE || end != owned.c_str() + owned.size()) return std::nullopt;
  return static_cast<i64>(v);
}

std::optional<i64> parse_positive_int(std::string_view text) {
  const auto v = parse_int(text);
  if (!v || *v <= 0) return std::nullopt;
  return v;
}

std::optional<double> parse_nonneg_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (errno == ERANGE || end != owned.c_str() + owned.size()) return std::nullopt;
  if (!std::isfinite(v) || v < 0.0) return std::nullopt;
  return v;
}

}  // namespace manymap
