#include "core/aligner.hpp"

#include <map>
#include <mutex>

namespace manymap {

Aligner::BatchResult Aligner::map_reads(std::vector<Sequence> reads, PipelineKind pipeline,
                                        u32 compute_threads, u64 batch_bases) const {
  BatchResult result;
  auto batches = make_batches(std::move(reads), batch_bases);
  auto source = vector_source(std::move(batches));

  ComputeFn compute = [this](const Sequence& read) {
    return to_paf_block(mapper_.map(read));
  };
  std::mutex out_mu;
  std::map<u64, std::string> chunks;
  OutputSink sink = [&](u64 batch_id, const std::vector<std::string>& lines) {
    std::string blob;
    for (const auto& l : lines) blob += l;
    std::lock_guard lock(out_mu);
    chunks.emplace(batch_id, std::move(blob));
  };

  PipelineOptions opt;
  opt.compute_threads = compute_threads;
  opt.sort_longest_first = pipeline == PipelineKind::kManymap;
  result.stats = pipeline == PipelineKind::kManymap
                     ? run_manymap_pipeline(source, compute, sink, opt)
                     : run_minimap2_pipeline(source, compute, sink, opt);
  for (auto& [id, blob] : chunks) result.paf += blob;
  return result;
}

}  // namespace manymap
