// Geometry-driven band selection (ISSUE 9): derive a per-segment DP band
// from what the chain stage already measured, instead of a static --band
// knob. minimap2 sizes its DP bandwidth from the anchor diagonal spread
// (Li 2018) and LOGAN's GPU rates rest on adaptive banding (Zeni 2020);
// here the same idea drives the diff/two-piece kernels' BandTracker.
//
// The estimate is deliberately aggressive: correctness never depends on
// it. A banded kernel whose optimum might leave the band flags band_hit
// and the mapper reruns that call unbanded (MapTimings::band_fallbacks),
// so an undersized band costs one wasted banded attempt, never a wrong
// answer. The policy's job is to keep that fallback rate near zero while
// shrinking O(|T|*|Q|) work to O(band*|Q|).
#pragma once

#include "base/common.hpp"

namespace manymap {

/// How the mapper chooses the kernel band for each DP segment.
enum class BandMode {
  kOff,    ///< always unbanded (the pre-auto default; --band 0)
  kFixed,  ///< static half-width from MapOptions::band (--band N, N > 0)
  kAuto,   ///< per-segment band from chain geometry (--band auto; default)
};

/// Tunables for the auto estimator. A segment band has three parts:
///   drift      — measured net |dt - dq| the path must absorb (gaps only;
///                extensions have no anchor on the far side, drift = 0)
///   slack      — flat headroom for scoring wiggle near the band edge
///   indel term — headroom for balanced indels inside the segment. These
///                act as a +-1 random walk on the diagonal, so the
///                deviation grows like sqrt(rate * len), not len; the
///                multiplier picks how many standard deviations to cover.
struct AutoBandPolicy {
  i32 slack = 16;            ///< flat half-width headroom per segment
  double indel_frac = 0.15;  ///< assumed per-base indel rate inside segments
  double indel_sd_mult = 4.0;  ///< random-walk std deviations to cover
  /// Indel rates are rarely balanced (PacBio CLR inserts ~2x what it
  /// deletes), so the walk has a net per-base drift. Between anchors the
  /// measured |dt - dq| already pins it, but extensions are unanchored on
  /// the far side: cover |ins_rate - del_rate| * len linearly there.
  double ext_bias_frac = 0.06;
  /// Longest extension (min of window/tail length) worth banding on a
  /// NOISY read. The escape ledger credits a would-be escapee
  /// match * remaining-cells, while an error-laden extension loses score
  /// linearly with length — past this length the ledger can always "beat"
  /// the banded optimum and the kernel would flag band_hit nearly every
  /// time, so the estimator sends longer noisy extensions straight to the
  /// full kernel instead of paying a doomed banded attempt plus the
  /// unbanded rerun. Calibrated against the ledger economics: the in-band
  /// deficit grows like (per-error penalty) * err * len while the cost of
  /// crossing the band edge is ~2 * band, so at CLR-grade 13-15 % error
  /// only tails up to a few hundred bases stay provable. Clean reads
  /// waive the cap through the density gate below, so this value only
  /// governs noisy reads.
  i32 ext_band_max_len = 256;
  /// Chain anchor density (anchors per spanned base) above which the read
  /// is clean enough that long extensions stay ledger-provable and the
  /// length cap is waived. Exact-k-mer anchor survival falls off as
  /// (1-err)^k: ~1 % error keeps one minimizer anchor every ~7 bases
  /// (density ~0.15) while 12-15 % error thins them past one per 40
  /// (density < 0.03), so the chain's own geometry separates the regimes.
  double clean_anchor_density = 0.05;
  /// Density over a short chain is small-sample noise, not evidence the
  /// READ is clean: a spurious 100 bp chain with a handful of anchors
  /// easily clears the density threshold and would waive the cap for a
  /// 2 kbp noisy tail hanging off it. chain_anchor_density() floors the
  /// span at this many bases, so only chains long enough to be real
  /// evidence can certify a read as clean.
  u64 min_density_span = 4000;
  i32 max_band = 4096;  ///< selected bands are capped here (huge gaps)
  /// A band only pays off if it excludes a decent share of the matrix:
  /// segments where 2*band+1 >= min_gain_lanes_frac * min(|T|,|Q|) run
  /// the full kernel instead (profitable_band returns 0).
  double min_gain_lanes_frac = 0.75;
};

/// Indel headroom for a segment of `len` aligned bases.
i32 indel_headroom(u64 len, const AutoBandPolicy& p);

/// Band half-width for a middle gap fill between two anchors dt target /
/// dq query bases apart: measured drift + slack + indel headroom.
i32 auto_band_for_gap(u64 dt, u64 dq, u32 drift, const AutoBandPolicy& p);

/// Band half-width for a left/right end extension: qlen query bases
/// against a tlen target window (usually qlen + end_bonus_window). The
/// band's center line runs corner to corner, so the |tlen - qlen| window
/// surplus acts like gap drift (a slope-1 path sits up to that many cells
/// off the center line mid-matrix) and is covered the same way, plus
/// slack and indel headroom scaled by the extension length.
/// `anchor_density` is the owning chain's anchors-per-spanned-base; below
/// clean_anchor_density the ext_band_max_len cap applies (returns 0 for
/// longer extensions — run the full kernel).
i32 auto_band_for_extension(u64 tlen, u64 qlen, double anchor_density,
                            const AutoBandPolicy& p);

/// Anchors-per-spanned-base of a chain, as consumed by the extension
/// estimator's clean-read gate. The span is floored at min_density_span:
/// a chain too short to be evidence reads as sparse (noisy), never clean.
double chain_anchor_density(std::size_t anchors, u64 span,
                            const AutoBandPolicy& p);

/// Gate a candidate band on profitability for a tlen x qlen segment:
/// returns the band when it meaningfully narrows the matrix, else 0
/// (caller runs the full kernel; counted as auto_band_full).
i32 profitable_band(i32 band, u64 tlen, u64 qlen, const AutoBandPolicy& p);

/// Representative band for a whole read of `read_len` bases under this
/// policy — an order-of-magnitude hint for batch placement (the real
/// per-segment bands are chosen later, per gap/extension).
i32 auto_band_typical(u64 read_len, const AutoBandPolicy& p);

}  // namespace manymap
