#include "core/breakdown.hpp"

#include <cstdio>

#include "base/timer.hpp"
#include "core/paf.hpp"
#include "index/index_io.hpp"
#include "io/mapped_file.hpp"
#include "sequence/fasta.hpp"

namespace manymap {

std::string StageBreakdown::to_table(const std::string& title) const {
  const double tot = total();
  auto pct = [&](double s) { return tot > 0 ? 100.0 * s / tot : 0.0; };
  char buf[512];
  std::string out = title + "\n";
  std::snprintf(buf, sizeof buf, "  %-14s %10.3fs %6.2f%%\n", "Load Index", load_index_s,
                pct(load_index_s));
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %10.3fs %6.2f%%\n", "Load Query", load_query_s,
                pct(load_query_s));
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %10.3fs %6.2f%%\n", "Seed & Chain", seed_chain_s,
                pct(seed_chain_s));
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %10.3fs %6.2f%%\n", "Align", align_s, pct(align_s));
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %10.3fs %6.2f%%\n", "Output", output_s,
                pct(output_s));
  out += buf;
  return out;
}

StageBreakdown run_instrumented(const Reference& ref, const BreakdownConfig& cfg,
                                std::string* paf_out) {
  StageBreakdown bd;

  WallTimer t;
  MinimizerIndex index =
      cfg.use_mmap ? load_index_mmap(cfg.index_path) : load_index_stream(cfg.index_path);
  bd.load_index_s = t.seconds();

  t.reset();
  std::vector<Sequence> reads;
  if (cfg.use_mmap) {
    MappedFile qf;
    MM_REQUIRE(qf.open(cfg.query_path), "cannot mmap query file");
    reads = parse_sequences(qf.view());
  } else {
    reads = parse_sequences(read_file(cfg.query_path));
  }
  bd.load_query_s = t.seconds();

  const Mapper mapper(ref, std::move(index), cfg.options);
  MapTimings timings;
  std::vector<std::vector<Mapping>> all;
  all.reserve(reads.size());
  for (const auto& r : reads) all.push_back(mapper.map(r, &timings));
  bd.seed_chain_s = timings.seed_chain_seconds;
  bd.align_s = timings.align_seconds;

  t.reset();
  std::string paf;
  for (const auto& ms : all) paf += to_paf_block(ms);
  bd.output_s = t.seconds();
  if (paf_out != nullptr) *paf_out = std::move(paf);
  return bd;
}

}  // namespace manymap
