// v2 repro format: a whole end-to-end case in one self-contained text
// file. Like v1, nothing depends on a seed or RNG version at replay time —
// workload synthesis parameters are explicit, and minimized cases carry
// their read set verbatim.
//
//   manymap-verify-repro v2
//   # free-form note lines
//   kind e2e
//   seed 42
//   ref_seed 7
//   ref_len 50000
//   ref_contigs 2
//   read_seed 11
//   num_reads 6
//   read_max_len 2000
//   band 128           (optional; absent = 0 = rung skipped)
//   zdrop 200          (optional)
//   dirs_budget 32768  (optional)
//   gpu 1              (optional; absent = 0)
//   workers 1 2 8
//   shuffle_seed 3
//   svc_resident 65536     (optional)
//   svc_score_only 1       (optional)
//   svc_banded 524288      (optional)
//   verify_every 1
//   fault_seed 9           (optional)
//   fault service.worker.compute error 4 2 0
//   read ACGT...           (optional explicit read set; overrides read_seed)
#include <fstream>
#include <sstream>

#include "sequence/dna.hpp"
#include "verify/e2e.hpp"
#include "verify/fuzzer.hpp"

namespace manymap {
namespace verify {

namespace {

constexpr const char* kMagicV1 = "manymap-verify-repro v1";
constexpr const char* kMagicV2 = "manymap-verify-repro v2";

bool parse_fault_kind(const std::string& s, fault::FaultKind* out) {
  if (s == "error") *out = fault::FaultKind::kError;
  else if (s == "slow") *out = fault::FaultKind::kSlow;
  else if (s == "stall") *out = fault::FaultKind::kStall;
  else return false;
  return true;
}

}  // namespace

std::string format_e2e_repro(const E2eCase& c, const std::string& note) {
  std::ostringstream out;
  out << kMagicV2 << "\n";
  if (!note.empty()) {
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  const E2eConfig& g = c.cfg;
  out << "kind e2e\n";
  out << "seed " << c.seed << "\n";
  out << "ref_seed " << g.ref_seed << "\n";
  out << "ref_len " << g.ref_len << "\n";
  out << "ref_contigs " << g.ref_contigs << "\n";
  out << "read_seed " << g.read_seed << "\n";
  out << "num_reads " << g.num_reads << "\n";
  out << "read_max_len " << g.read_max_len << "\n";
  // Optional knobs follow the v1 convention: emitted only when set, so
  // minimal cases stay minimal and absent keys parse as their defaults.
  if (g.band != 0) out << "band " << g.band << "\n";
  if (g.zdrop != 0) out << "zdrop " << g.zdrop << "\n";
  if (g.dirs_budget != 0) out << "dirs_budget " << g.dirs_budget << "\n";
  if (g.gpu) out << "gpu 1\n";
  out << "workers";
  for (u32 w : g.workers) out << ' ' << w;
  out << "\n";
  out << "shuffle_seed " << g.shuffle_seed << "\n";
  if (g.svc_resident_bytes != 0) out << "svc_resident " << g.svc_resident_bytes << "\n";
  if (g.svc_score_only_bytes != 0) out << "svc_score_only " << g.svc_score_only_bytes << "\n";
  if (g.svc_banded_bytes != 0) out << "svc_banded " << g.svc_banded_bytes << "\n";
  out << "verify_every " << g.verify_every << "\n";
  if (g.fault_seed != 0) out << "fault_seed " << g.fault_seed << "\n";
  for (const E2eFault& f : g.faults)
    out << "fault " << f.site << ' ' << fault::to_string(f.kind) << ' ' << f.one_in << ' '
        << f.max_fires << ' ' << f.delay_ms << "\n";
  for (const std::vector<u8>& r : c.reads) out << "read " << decode_dna(r) << "\n";
  return out.str();
}

bool parse_e2e_repro(const std::string& text, E2eCase* out, std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagicV2)
    return fail("missing or unsupported repro header");
  E2eCase c;
  c.cfg.workers.clear();  // the file's list replaces the default
  bool have_kind = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string sval;
    E2eConfig& g = c.cfg;
    if (key == "kind") {
      if (!(ls >> sval) || sval != "e2e") return fail("bad kind: " + line);
      have_kind = true;
    } else if (key == "seed") {
      if (!(ls >> c.seed)) return fail("bad seed: " + line);
    } else if (key == "ref_seed") {
      if (!(ls >> g.ref_seed)) return fail("bad ref_seed: " + line);
    } else if (key == "ref_len") {
      if (!(ls >> g.ref_len) || g.ref_len == 0) return fail("bad ref_len: " + line);
    } else if (key == "ref_contigs") {
      if (!(ls >> g.ref_contigs) || g.ref_contigs == 0)
        return fail("bad ref_contigs: " + line);
    } else if (key == "read_seed") {
      if (!(ls >> g.read_seed)) return fail("bad read_seed: " + line);
    } else if (key == "num_reads") {
      if (!(ls >> g.num_reads)) return fail("bad num_reads: " + line);
    } else if (key == "read_max_len") {
      if (!(ls >> g.read_max_len) || g.read_max_len == 0)
        return fail("bad read_max_len: " + line);
    } else if (key == "band") {
      if (!(ls >> g.band) || g.band < 0) return fail("bad band: " + line);
    } else if (key == "zdrop") {
      if (!(ls >> g.zdrop) || g.zdrop < 0) return fail("bad zdrop: " + line);
    } else if (key == "dirs_budget") {
      if (!(ls >> g.dirs_budget)) return fail("bad dirs_budget: " + line);
    } else if (key == "gpu") {
      int v = 0;
      if (!(ls >> v) || (v != 0 && v != 1)) return fail("bad gpu flag: " + line);
      g.gpu = v == 1;
    } else if (key == "workers") {
      u32 w = 0;
      while (ls >> w) {
        if (w == 0) return fail("bad workers: " + line);
        g.workers.push_back(w);
      }
      if (g.workers.empty()) return fail("bad workers: " + line);
    } else if (key == "shuffle_seed") {
      if (!(ls >> g.shuffle_seed)) return fail("bad shuffle_seed: " + line);
    } else if (key == "svc_resident") {
      if (!(ls >> g.svc_resident_bytes)) return fail("bad svc_resident: " + line);
    } else if (key == "svc_score_only") {
      if (!(ls >> g.svc_score_only_bytes)) return fail("bad svc_score_only: " + line);
    } else if (key == "svc_banded") {
      if (!(ls >> g.svc_banded_bytes)) return fail("bad svc_banded: " + line);
    } else if (key == "verify_every") {
      if (!(ls >> g.verify_every)) return fail("bad verify_every: " + line);
    } else if (key == "fault_seed") {
      if (!(ls >> g.fault_seed)) return fail("bad fault_seed: " + line);
    } else if (key == "fault") {
      E2eFault f;
      std::string kind;
      if (!(ls >> f.site >> kind >> f.one_in >> f.max_fires >> f.delay_ms) ||
          !parse_fault_kind(kind, &f.kind) || f.one_in == 0)
        return fail("bad fault: " + line);
      g.faults.push_back(std::move(f));
    } else if (key == "read") {
      if (!(ls >> sval)) return fail("bad read: " + line);
      c.reads.push_back(encode_dna(sval));
    } else {
      return fail("unknown key: " + key);
    }
  }
  if (!have_kind) return fail("repro lacks 'kind e2e'");
  if (c.cfg.workers.empty()) c.cfg.workers = {1};
  *out = std::move(c);
  return true;
}

bool load_repro_any(const std::string& path, ReproKind* kind, CaseSpec* kernel,
                    E2eCase* e2e, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::istringstream first(text);
  std::string header;
  std::getline(first, header);
  if (header == kMagicV1) {
    *kind = ReproKind::kKernel;
    return parse_repro(text, kernel, err);
  }
  if (header == kMagicV2) {
    *kind = ReproKind::kE2e;
    return parse_e2e_repro(text, e2e, err);
  }
  if (err != nullptr) *err = "missing or unsupported repro header in " + path;
  return false;
}

}  // namespace verify
}  // namespace manymap
