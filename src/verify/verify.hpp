// Differential verification oracle for the alignment kernel matrix.
//
// A CaseSpec pins down ONE production kernel invocation — kernel family
// (one-piece diff / two-piece diff / SIMT block form), memory layout, ISA,
// alignment mode, score-only vs full path, scoring parameters and the
// concrete sequence pair. The oracle replays the case through the
// full-matrix reference DP and validates the production result:
//   1. score equality with the reference,
//   2. end-cell equality,
//   3. CIGAR well-formedness (no zero-length ops, no adjacent runs of the
//      same op, ops consume exactly the aligned target/query spans),
//   4. score recomputation from the CIGAR equals the reported score,
//   5. exact CIGAR equality with the reference (the kernels share the
//      reference's deterministic tie-breaking, so paths must be bit-exact).
//
// This is the trust layer every perf PR lands on: a kernel refactor that
// passes the fuzzer sweep (fuzzer.hpp) across the full
// (layout x ISA x mode x path x family) matrix is score- and
// CIGAR-equivalent to the gold standard.
#pragma once

#include <string>
#include <vector>

#include "align/kernel_api.hpp"
#include "align/twopiece.hpp"

namespace manymap {
namespace verify {

/// Kernel families under verification. kSimt runs the block-interpreter
/// GPU kernel forms (Fig. 4a/4b), which share the one-piece scoring model.
/// kBanded runs the banded global DP with a full-coverage band — the
/// fallback ladder's last rung (align/fallback.hpp), which must equal the
/// reference DP bit-for-bit, tie-breaking included.
enum class Family { kDiff, kTwoPiece, kSimt, kBanded };

const char* to_string(Family family);

/// Self-contained description of one kernel invocation.
struct CaseSpec {
  Family family = Family::kDiff;
  Layout layout = Layout::kManymap;
  Isa isa = Isa::kScalar;  ///< ignored by kSimt (interpreter, not ISA)
  AlignMode mode = AlignMode::kGlobal;
  bool with_cigar = true;
  u32 simt_threads = 64;   ///< block width for kSimt
  ScoreParams params{};    ///< kDiff / kSimt scoring
  TwoPieceParams tp{};     ///< kTwoPiece scoring
  /// Static band half-width for the banded kernel variants (0 = unbanded).
  /// For kDiff / kTwoPiece / kSimt, run_production replays the production
  /// contract: run banded, and on band_hit / BandHitError rerun unbanded —
  /// exactly the Mapper's auto-full fallback — so the final result must
  /// still match the unbanded reference bit-for-bit. For kBanded it is the
  /// reference rung's half-width (0 keeps the full-coverage default).
  i32 band = 0;
  /// Adaptive X-drop threshold (banded runs only; 0 = off). Results that
  /// come back with `zdropped` set are heuristic and checked as bounded
  /// (score <= reference optimum, CIGAR self-consistent), not bit-exact.
  i32 zdrop = 0;
  std::vector<u8> target;
  std::vector<u8> query;

  /// Human-readable (family/layout/isa/mode/path) combo label.
  std::string combo() const;
};

/// True when the case's kernel exists on this machine (ISA compiled in and
/// supported) and its parameters satisfy the int8 difference-lane contract.
bool runnable(const CaseSpec& spec);

struct CheckResult {
  bool ok = true;
  std::string failure;  ///< first violated invariant, human-readable

  static CheckResult fail(std::string why) { return CheckResult{false, std::move(why)}; }
};

/// Structural CIGAR validation: every op length > 0, no two adjacent ops of
/// the same kind (push() merges, so adjacency indicates a broken emitter),
/// and the ops consume exactly `t_span` target and `q_span` query bases.
bool validate_cigar_shape(const Cigar& cigar, u64 t_span, u64 q_span,
                          std::string* why = nullptr);

/// Score a CIGAR path under the two-piece gap model (the one-piece analogue
/// is Cigar::score).
i64 twopiece_cigar_score(const Cigar& cigar, const std::vector<u8>& target,
                         const std::vector<u8>& query, const TwoPieceParams& p);

/// Run the production kernel for a runnable case. The two-argument form
/// routes the kernel's DP workspace through `arena` (see align/arena.hpp),
/// so callers that replay many cases — the fuzzer sweep, the service's
/// live verifier — exercise the dirty-workspace reuse path instead of a
/// fresh allocation per case; nullptr keeps the fresh-workspace behaviour.
AlignResult run_production(const CaseSpec& spec);
AlignResult run_production(const CaseSpec& spec, detail::KernelArena* arena);

/// As run_production, but drives the diagonal-block dirs streaming path:
/// direction rows leave the arena through `spill` in blocks of
/// `block_rows` padded diagonal rows (0 picks the default block; see
/// align/dirs_spill.hpp). kDiff / kTwoPiece only — the other families have
/// no streaming form. Results must be bit-identical to the resident path.
AlignResult run_production_streamed(const CaseSpec& spec, detail::KernelArena* arena,
                                    DirsSpill* spill, i32 block_rows);

/// Run the matching full-matrix reference DP (always with a CIGAR, so the
/// oracle can compare paths).
AlignResult run_reference(const CaseSpec& spec);

/// Validate an already-produced result against a reference result. Exposed
/// separately so tests can feed corrupted results and the sweep can reuse
/// one reference across the (layout x ISA x path) cells of a case.
CheckResult check_result(const CaseSpec& spec, const AlignResult& got,
                         const AlignResult& ref);

/// check_result(spec, run_production(spec), run_reference(spec)).
CheckResult run_oracle(const CaseSpec& spec);

/// One mapping from a live service response, reduced to what the oracle
/// needs (no dependency on the service's types). `query` is the oriented
/// read — reverse-complemented by the caller when the mapping is on the
/// reverse strand — and qstart/qend are oriented coordinates.
struct LiveMapping {
  const std::vector<u8>* contig = nullptr;  ///< full contig codes
  u64 tstart = 0, tend = 0;                 ///< reference span, end exclusive
  const std::vector<u8>* query = nullptr;   ///< oriented query codes
  u32 qstart = 0, qend = 0;                 ///< oriented span, end exclusive
  i64 score = 0;                            ///< reported DP score
  const Cigar* cigar = nullptr;             ///< reported path
};

/// Default ceiling for the row-band streamed reference replay inside
/// check_live_mapping: covers a 64 kbp x 64 kbp span (~4.1e9 cells) with
/// headroom while keeping a single audit at seconds, not minutes.
inline constexpr u64 kDefaultMaxStreamCells = u64{5} << 30;

/// Audit one live mapping: coordinate sanity, CIGAR shape over the spans,
/// CIGAR rescoring == reported score, and a reference upper-bound check —
/// the reference DP over the spans must not score LOWER than the reported
/// path (the stitched path is one valid global path, so reported >
/// reference proves a scoring bug; reported < reference is expected,
/// stitching is a heuristic). Spans up to `max_ref_cells` replay the
/// full-matrix reference; larger spans up to `max_stream_cells` replay the
/// row-band streamed reference (reference_align_streamed), which needs
/// O(|T|+|Q|) memory instead of O(|T|*|Q|) — this is what lets >32 kbp
/// mappings be spot-verified at all. Used by the serving layer's --verify
/// sampling.
CheckResult check_live_mapping(const LiveMapping& m, const ScoreParams& params,
                               u64 max_ref_cells,
                               u64 max_stream_cells = kDefaultMaxStreamCells);

/// Audit a score-only live mapping (no CIGAR to rescore — the breaker or
/// the footprint cap skipped the path pass and the reported score is a
/// chain score, advisory by contract): both spans must be non-empty and
/// inside their sequences. `m.cigar` may be null; `m.score` is ignored.
/// This is what lets degraded responses be *verified*, not just skipped.
CheckResult check_live_spans(const LiveMapping& m);

}  // namespace verify
}  // namespace manymap
