// Self-contained text repro format for divergent cases. Everything needed
// to replay the exact kernel invocation lives in the file; no seed or RNG
// version dependence, so committed regressions stay valid forever.
//
//   manymap-verify-repro v1
//   # free-form note lines
//   family twopiece
//   layout minimap2
//   isa avx2
//   mode extension
//   cigar 1
//   simt_threads 64
//   band 16          (optional; absent = 0 = unbanded)
//   zdrop 100        (optional; absent = 0 = adaptive X-drop off)
//   params 2 4 4 2
//   tp_params 2 4 4 2 24 1
//   target ACGTN...   ("-" for an empty sequence)
//   query ACGT...
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sequence/dna.hpp"
#include "verify/fuzzer.hpp"

namespace manymap {
namespace verify {

namespace {

constexpr const char* kMagic = "manymap-verify-repro v1";

std::string seq_to_text(const std::vector<u8>& s) {
  return s.empty() ? std::string("-") : decode_dna(s);
}

std::vector<u8> text_to_seq(const std::string& s) {
  return s == "-" ? std::vector<u8>{} : encode_dna(s);
}

bool parse_family(const std::string& s, Family* out) {
  if (s == "diff") *out = Family::kDiff;
  else if (s == "twopiece") *out = Family::kTwoPiece;
  else if (s == "simt") *out = Family::kSimt;
  else if (s == "banded") *out = Family::kBanded;
  else return false;
  return true;
}

bool parse_layout(const std::string& s, Layout* out) {
  if (s == "minimap2") *out = Layout::kMinimap2;
  else if (s == "manymap") *out = Layout::kManymap;
  else return false;
  return true;
}

bool parse_isa(const std::string& s, Isa* out) {
  if (s == "scalar") *out = Isa::kScalar;
  else if (s == "sse2") *out = Isa::kSse2;
  else if (s == "avx2") *out = Isa::kAvx2;
  else if (s == "avx512") *out = Isa::kAvx512;
  else return false;
  return true;
}

bool parse_mode(const std::string& s, AlignMode* out) {
  if (s == "global") *out = AlignMode::kGlobal;
  else if (s == "extension") *out = AlignMode::kExtension;
  else return false;
  return true;
}

}  // namespace

std::string format_repro(const CaseSpec& spec, const std::string& note) {
  std::ostringstream out;
  out << kMagic << "\n";
  if (!note.empty()) {
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  out << "family " << to_string(spec.family) << "\n";
  out << "layout " << manymap::to_string(spec.layout) << "\n";
  out << "isa " << manymap::to_string(spec.isa) << "\n";
  out << "mode " << manymap::to_string(spec.mode) << "\n";
  out << "cigar " << (spec.with_cigar ? 1 : 0) << "\n";
  out << "simt_threads " << spec.simt_threads << "\n";
  // Band geometry: emitted only when banded so pre-band repro files and
  // fresh unbanded ones stay byte-identical (absent keys parse as 0).
  if (spec.band != 0) out << "band " << spec.band << "\n";
  if (spec.zdrop != 0) out << "zdrop " << spec.zdrop << "\n";
  out << "params " << spec.params.match << ' ' << spec.params.mismatch << ' '
      << spec.params.gap_open << ' ' << spec.params.gap_ext << "\n";
  out << "tp_params " << spec.tp.match << ' ' << spec.tp.mismatch << ' '
      << spec.tp.gap_open1 << ' ' << spec.tp.gap_ext1 << ' ' << spec.tp.gap_open2 << ' '
      << spec.tp.gap_ext2 << "\n";
  out << "target " << seq_to_text(spec.target) << "\n";
  out << "query " << seq_to_text(spec.query) << "\n";
  return out.str();
}

bool parse_repro(const std::string& text, CaseSpec* out, std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    return fail("missing or unsupported repro header");
  CaseSpec spec;
  bool have_target = false, have_query = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string sval;
    if (key == "family") {
      if (!(ls >> sval) || !parse_family(sval, &spec.family))
        return fail("bad family: " + line);
    } else if (key == "layout") {
      if (!(ls >> sval) || !parse_layout(sval, &spec.layout))
        return fail("bad layout: " + line);
    } else if (key == "isa") {
      if (!(ls >> sval) || !parse_isa(sval, &spec.isa)) return fail("bad isa: " + line);
    } else if (key == "mode") {
      if (!(ls >> sval) || !parse_mode(sval, &spec.mode)) return fail("bad mode: " + line);
    } else if (key == "cigar") {
      int v = 0;
      if (!(ls >> v) || (v != 0 && v != 1)) return fail("bad cigar flag: " + line);
      spec.with_cigar = v == 1;
    } else if (key == "simt_threads") {
      if (!(ls >> spec.simt_threads)) return fail("bad simt_threads: " + line);
    } else if (key == "band") {
      if (!(ls >> spec.band) || spec.band < 0) return fail("bad band: " + line);
    } else if (key == "zdrop") {
      if (!(ls >> spec.zdrop) || spec.zdrop < 0) return fail("bad zdrop: " + line);
    } else if (key == "params") {
      auto& p = spec.params;
      if (!(ls >> p.match >> p.mismatch >> p.gap_open >> p.gap_ext))
        return fail("bad params: " + line);
    } else if (key == "tp_params") {
      auto& p = spec.tp;
      if (!(ls >> p.match >> p.mismatch >> p.gap_open1 >> p.gap_ext1 >> p.gap_open2 >>
            p.gap_ext2))
        return fail("bad tp_params: " + line);
    } else if (key == "target") {
      if (!(ls >> sval)) return fail("bad target: " + line);
      spec.target = text_to_seq(sval);
      have_target = true;
    } else if (key == "query") {
      if (!(ls >> sval)) return fail("bad query: " + line);
      spec.query = text_to_seq(sval);
      have_query = true;
    } else {
      return fail("unknown key: " + key);
    }
  }
  if (!have_target || !have_query) return fail("repro lacks target/query");
  *out = std::move(spec);
  return true;
}

bool load_repro_file(const std::string& path, CaseSpec* out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_repro(buf.str(), out, err);
}

}  // namespace verify
}  // namespace manymap
