// End-to-end determinism harness: replays whole serving scenarios through
// the real Mapper::map and AlignmentService paths and asserts the contract
// spelled out in e2e.hpp. See check_e2e_case below for the phase order.
#include "verify/e2e_fuzzer.hpp"

#include <algorithm>
#include <future>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/mapper.hpp"
#include "core/options.hpp"
#include "gpu/batch_mapper.hpp"
#include "sequence/dna.hpp"
#include "service/service.hpp"
#include "simulate/genome.hpp"
#include "simulate/read_sim.hpp"
#include "verify/fuzzer.hpp"

namespace manymap {
namespace verify {

namespace {

/// Cells cap for the exact reference replay inside the live audits: covers
/// the largest case the generator draws (~2 kbp reads -> ~4M-cell spans)
/// with headroom; larger spans stream.
constexpr u64 kAuditMaxCells = 8'000'000;

struct Workload {
  Reference ref;
  std::vector<Sequence> reads;
};

std::vector<Sequence> synthesize_reads(const Reference& ref, const E2eConfig& g) {
  ReadSimParams rp;
  rp.num_reads = g.num_reads;
  rp.seed = g.read_seed;
  rp.profile.max_length = g.read_max_len;
  rp.profile.min_length = std::min<u32>(rp.profile.min_length, g.read_max_len);
  ReadSimulator sim(ref, rp);
  std::vector<Sequence> reads;
  for (auto& sr : sim.simulate()) reads.push_back(std::move(sr.read));
  return reads;
}

Workload materialize(const E2eCase& c) {
  GenomeParams gp;
  gp.total_length = c.cfg.ref_len;
  gp.num_contigs = c.cfg.ref_contigs;
  gp.seed = c.cfg.ref_seed;
  // Repeat content scaled to the tens-of-kbp genomes the cases draw (the
  // defaults assume megabase genomes and would tile a 30 kbp one).
  gp.repeat_families = 2;
  gp.repeat_copies = 4;
  gp.repeat_length = 300;
  Workload w;
  w.ref = generate_genome(gp);
  if (!c.reads.empty()) {
    for (std::size_t i = 0; i < c.reads.size(); ++i) {
      Sequence s;
      s.name = "r" + std::to_string(i);
      s.codes = c.reads[i];
      w.reads.push_back(std::move(s));
    }
  } else {
    w.reads = synthesize_reads(w.ref, c.cfg);
  }
  return w;
}

bool mappings_equal(const Mapping& a, const Mapping& b) {
  return a.qstart == b.qstart && a.qend == b.qend && a.rev == b.rev && a.rid == b.rid &&
         a.tstart == b.tstart && a.tend == b.tend && a.score == b.score &&
         a.chain_score == b.chain_score && a.mapq == b.mapq && a.primary == b.primary &&
         a.matches == b.matches && a.align_length == b.align_length && a.cigar == b.cigar;
}

std::string mapping_brief(const Mapping& m) {
  std::ostringstream o;
  o << (m.rev ? '-' : '+') << m.rid << ":[" << m.tstart << ',' << m.tend << ") q[" << m.qstart
    << ',' << m.qend << ") score=" << m.score << " mapq=" << m.mapq
    << " cigar=" << (m.cigar.empty() ? std::string("-") : m.cigar.to_string());
  return o.str();
}

CheckResult compare_mapping_lists(const std::string& what, std::size_t read_idx,
                                  const std::vector<Mapping>& got,
                                  const std::vector<Mapping>& want) {
  std::ostringstream where;
  where << what << " read " << read_idx;
  if (got.size() != want.size()) {
    std::ostringstream o;
    o << where.str() << ": " << got.size() << " mappings, baseline has " << want.size();
    return CheckResult::fail(o.str());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!mappings_equal(got[i], want[i])) {
      std::ostringstream o;
      o << where.str() << " mapping " << i << ": " << mapping_brief(got[i])
        << " != " << mapping_brief(want[i]);
      return CheckResult::fail(o.str());
    }
  }
  return {};
}

/// Route one mapping through the live oracle exactly as the service's
/// sampling does: full audit when a CIGAR exists, span audit otherwise.
CheckResult audit_mapping(const Reference& ref, const Sequence& read,
                          const std::vector<u8>& rc, const Mapping& m,
                          const ScoreParams& scores) {
  LiveMapping lm;
  lm.contig = &ref.contig(m.rid).codes;
  lm.tstart = m.tstart;
  lm.tend = m.tend;
  lm.query = m.rev ? &rc : &read.codes;
  lm.qstart = m.rev ? m.qlen - m.qend : m.qstart;
  lm.qend = m.rev ? m.qlen - m.qstart : m.qend;
  lm.score = m.score;
  lm.cigar = &m.cigar;
  return m.cigar.empty() ? check_live_spans(lm)
                         : check_live_mapping(lm, scores, kAuditMaxCells);
}

std::vector<u32> shuffled_order(std::size_t n, u64 seed) {
  std::vector<u32> order(n);
  std::iota(order.begin(), order.end(), 0u);
  XorShift rng(seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  return order;
}

ServiceConfig make_service_cfg(const E2eConfig& g, const MapOptions& opt, u32 workers,
                               bool with_mem, bool with_gpu) {
  ServiceConfig cfg;
  cfg.map = opt;
  cfg.shards = workers >= 4 ? 2 : 1;
  cfg.workers_per_shard = std::max(1u, workers / cfg.shards);
  cfg.paf_with_cigar = true;
  cfg.verify_sample_every = g.verify_every;
  cfg.verify_max_cells = kAuditMaxCells;
  if (with_mem) {
    cfg.mem.resident_request_bytes = g.svc_resident_bytes;
    cfg.mem.score_only_above_bytes = g.svc_score_only_bytes;
    cfg.mem.banded_request_bytes = g.svc_banded_bytes;
  }
  if (with_gpu) {
    cfg.gpu.enabled = true;
    cfg.gpu.batch.layout = opt.layout;
    cfg.gpu.batch.num_streams = 4;
    cfg.gpu.batch.min_gpu_cells = 1024;
  }
  return cfg;
}

struct ServiceRun {
  std::vector<MapResponse> responses;  ///< indexed by read, not submit order
  MetricsSnapshot metrics;
};

ServiceRun run_service(const Reference& ref, const MinimizerIndex& index,
                       const std::vector<Sequence>& reads, const ServiceConfig& cfg,
                       const std::vector<u32>& order) {
  AlignmentService svc(ref, index, cfg);
  std::vector<std::future<MapResponse>> futures(reads.size());
  for (u32 idx : order) {
    MapRequest req;
    req.id = idx;
    req.read = reads[idx];
    futures[idx] = svc.submit_wait(std::move(req));
  }
  ServiceRun run;
  run.responses.resize(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) run.responses[i] = futures[i].get();
  svc.shutdown();
  run.metrics = svc.metrics().snapshot();
  return run;
}

bool has_mem_ladder(const E2eConfig& g) {
  return g.svc_resident_bytes != 0 || g.svc_score_only_bytes != 0 || g.svc_banded_bytes != 0;
}

CheckResult check_e2e_case_impl(const E2eCase& c) {
  const E2eConfig& g = c.cfg;
  const Workload w = materialize(c);
  const MapOptions opt = MapOptions::map_pb();
  const Mapper mapper(w.ref, opt);

  std::vector<std::vector<u8>> rcs;
  rcs.reserve(w.reads.size());
  for (const Sequence& r : w.reads) rcs.push_back(reverse_complement(r.codes));

  // --- phase 1: resident baseline + live audit; score-only baseline -----
  std::vector<std::vector<Mapping>> base(w.reads.size());
  std::vector<std::vector<Mapping>> base_so(w.reads.size());
  for (std::size_t i = 0; i < w.reads.size(); ++i) {
    base[i] = mapper.map(w.reads[i], MapCall{});
    for (const Mapping& m : base[i]) {
      const CheckResult a = audit_mapping(w.ref, w.reads[i], rcs[i], m, opt.scores);
      if (!a.ok) {
        std::ostringstream o;
        o << "baseline audit read " << i << ": " << a.failure;
        return CheckResult::fail(o.str());
      }
    }
    MapCall so;
    so.score_only = true;
    base_so[i] = mapper.map(w.reads[i], so);
    for (const Mapping& m : base_so[i]) {
      const CheckResult a = audit_mapping(w.ref, w.reads[i], rcs[i], m, opt.scores);
      if (!a.ok) {
        std::ostringstream o;
        o << "score-only baseline audit read " << i << ": " << a.failure;
        return CheckResult::fail(o.str());
      }
    }
    // Locus consistency between the full and score-only views: both derive
    // from the same best chain, so the primary mappings must name the same
    // strand of the same contig with intersecting reference spans (the
    // exact endpoints legitimately differ — DP extension vs chain bounds).
    if (!base[i].empty() && !base_so[i].empty()) {
      const Mapping& f = base[i].front();
      const Mapping& s = base_so[i].front();
      if (f.rid != s.rid || f.rev != s.rev || s.tend <= f.tstart || f.tend <= s.tstart) {
        std::ostringstream o;
        o << "score-only primary locus read " << i << ": " << mapping_brief(s)
          << " does not overlap full baseline " << mapping_brief(f);
        return CheckResult::fail(o.str());
      }
    }
  }

  // --- phase 2: degradation rungs against the baseline ------------------
  if (g.dirs_budget != 0) {
    for (std::size_t i = 0; i < w.reads.size(); ++i) {
      MapCall call;
      call.dirs_budget_bytes = g.dirs_budget;
      const CheckResult r =
          compare_mapping_lists("streamed-dirs rung", i, mapper.map(w.reads[i], call), base[i]);
      if (!r.ok) return r;
    }
  }
  if (g.band > 0) {
    for (std::size_t i = 0; i < w.reads.size(); ++i) {
      MapCall call;
      call.band = g.band;
      call.zdrop = g.zdrop;
      const std::vector<Mapping> got = mapper.map(w.reads[i], call);
      if (g.zdrop == 0) {
        // Exact by the auto-full-fallback contract: any band_hit reruns
        // unbanded, so the band choice never changes the answer.
        const CheckResult r = compare_mapping_lists("banded rung", i, got, base[i]);
        if (!r.ok) return r;
      } else {
        // Advisory: zdropped kernels return heuristic paths the mapper
        // does not rerun, so the answer may differ — but every mapping
        // must still survive the full live audit.
        for (const Mapping& m : got) {
          const CheckResult a = audit_mapping(w.ref, w.reads[i], rcs[i], m, opt.scores);
          if (!a.ok) {
            std::ostringstream o;
            o << "banded+zdrop rung audit read " << i << ": " << a.failure;
            return CheckResult::fail(o.str());
          }
        }
      }
    }
  }
  if (g.gpu) {
    gpu::GpuBatchConfig gc;
    gc.layout = opt.layout;
    gc.num_streams = 2;
    gc.min_gpu_cells = 1024;  // low cutoff so the device actually runs
    gpu::GpuBatchMapper gm(gc);
    const std::function<AlignResult(const DiffArgs&)> device_kernel =
        [&gm](const DiffArgs& a) { return gm.align_segment(a, 0).result; };
    for (std::size_t i = 0; i < w.reads.size(); ++i) {
      MapCall call;
      call.kernel_override = &device_kernel;
      const CheckResult r =
          compare_mapping_lists("gpu rung", i, mapper.map(w.reads[i], call), base[i]);
      if (!r.ok) return r;
    }
  }

  // --- phase 3: service determinism across workers and orders -----------
  std::vector<std::string> first_paf;
  for (std::size_t wi = 0; wi < g.workers.size(); ++wi) {
    const u32 workers = g.workers[wi];
    const bool gpu_run = g.gpu && wi + 1 == g.workers.size();
    const ServiceConfig cfg = make_service_cfg(g, opt, workers, /*with_mem=*/false, gpu_run);
    std::vector<u32> order(w.reads.size());
    std::iota(order.begin(), order.end(), 0u);
    if (wi > 0) order = shuffled_order(w.reads.size(), g.shuffle_seed + wi);
    const ServiceRun run = run_service(w.ref, mapper.index(), w.reads, cfg, order);
    for (std::size_t i = 0; i < w.reads.size(); ++i) {
      const MapResponse& resp = run.responses[i];
      std::ostringstream where;
      where << "service w=" << workers;
      if (resp.status != RequestStatus::kOk)
        return CheckResult::fail(where.str() + " read " + std::to_string(i) + ": status " +
                                 std::string(to_string(resp.status)) + " " + resp.error);
      if (resp.degraded || resp.degrade != DegradeLevel::kNone)
        return CheckResult::fail(where.str() + " read " + std::to_string(i) +
                                 ": unexpected degraded response");
      const CheckResult r = compare_mapping_lists(where.str(), i, resp.mappings, base[i]);
      if (!r.ok) return r;
      if (wi == 0) {
        first_paf.push_back(resp.paf);
      } else if (resp.paf != first_paf[i]) {
        return CheckResult::fail(where.str() + " read " + std::to_string(i) +
                                 ": PAF differs across worker counts");
      }
    }
    if (run.metrics.verify_divergences != 0)
      return CheckResult::fail("service w=" + std::to_string(workers) + ": " +
                               std::to_string(run.metrics.verify_divergences) +
                               " live-oracle divergences");
  }

  // --- phase 4: memory-ladder service run --------------------------------
  if (has_mem_ladder(g)) {
    const ServiceConfig cfg =
        make_service_cfg(g, opt, g.workers.back(), /*with_mem=*/true, /*with_gpu=*/false);
    std::vector<u32> order(w.reads.size());
    std::iota(order.begin(), order.end(), 0u);
    const ServiceRun run = run_service(w.ref, mapper.index(), w.reads, cfg, order);
    bool any_degraded = false;
    for (std::size_t i = 0; i < w.reads.size(); ++i) {
      const MapResponse& resp = run.responses[i];
      if (resp.status != RequestStatus::kOk)
        return CheckResult::fail("memory-ladder read " + std::to_string(i) + ": status " +
                                 std::string(to_string(resp.status)) + " " + resp.error);
      any_degraded = any_degraded || resp.degraded || resp.degrade != DegradeLevel::kNone;
      const bool score_only = resp.degraded || resp.degrade == DegradeLevel::kScoreOnly;
      // Streamed-dirs (and the banded rung, which reports kNone) answers
      // are bit-identical by contract; score-only answers must equal the
      // direct score-only baseline bit-for-bit.
      const CheckResult r =
          compare_mapping_lists(score_only ? "memory-ladder score-only" : "memory-ladder",
                                i, resp.mappings, score_only ? base_so[i] : base[i]);
      if (!r.ok) return r;
    }
    if (run.metrics.verify_divergences != 0)
      return CheckResult::fail("memory-ladder: " +
                               std::to_string(run.metrics.verify_divergences) +
                               " live-oracle divergences");
    // The satellite contract this harness exists to enforce: degraded
    // responses are audited, not exempted.
    if (any_degraded && g.verify_every == 1 && run.metrics.verified_degraded == 0)
      return CheckResult::fail(
          "memory-ladder: degraded responses were served but never audited "
          "(verified_degraded == 0)");
  }

  // --- phase 5: chaos composition under live auditing --------------------
  if (!g.faults.empty()) {
    fault::FaultPlan plan(g.fault_seed != 0 ? g.fault_seed : c.seed);
    for (const E2eFault& f : g.faults) plan.arm(f.to_spec());
    {
      fault::ScopedPlan guard(&plan);
      const ServiceConfig cfg =
          make_service_cfg(g, opt, g.workers.back(), has_mem_ladder(g), g.gpu);
      const ServiceRun run =
          run_service(w.ref, mapper.index(), w.reads, cfg,
                      shuffled_order(w.reads.size(), g.shuffle_seed + 97));
      for (std::size_t i = 0; i < w.reads.size(); ++i) {
        const MapResponse& resp = run.responses[i];
        // Which request a fault lands on depends on thread interleaving,
        // so statuses are not required to be deterministic — only terminal
        // and structured, with kOk answers still honoring the contract.
        if (resp.status == RequestStatus::kFailed) {
          if (resp.error.empty())
            return CheckResult::fail("chaos read " + std::to_string(i) +
                                     ": kFailed without an error message");
          continue;
        }
        if (resp.status != RequestStatus::kOk)
          return CheckResult::fail("chaos read " + std::to_string(i) + ": status " +
                                   std::string(to_string(resp.status)));
        const bool score_only = resp.degraded || resp.degrade == DegradeLevel::kScoreOnly;
        const CheckResult r =
            compare_mapping_lists(score_only ? "chaos score-only" : "chaos", i,
                                  resp.mappings, score_only ? base_so[i] : base[i]);
        if (!r.ok) return r;
      }
      if (run.metrics.verify_divergences != 0)
        return CheckResult::fail("chaos: " + std::to_string(run.metrics.verify_divergences) +
                                 " live-oracle divergences");
    }
    // Post-chaos: with the plan gone the mapper answers cleanly again.
    const CheckResult r =
        compare_mapping_lists("post-chaos replay", 0, mapper.map(w.reads[0], MapCall{}), base[0]);
    if (!r.ok) return r;
  }
  return {};
}

}  // namespace

E2eCase make_e2e_case(u64 seed) {
  XorShift rng(seed * 0x9e3779b97f4a7c15ULL + 0xe2e);
  E2eCase c;
  c.seed = seed;
  E2eConfig& g = c.cfg;
  g.ref_seed = rng.next();
  g.ref_len = 20'000 + rng.below(40'001);
  g.ref_contigs = 1 + static_cast<u32>(rng.below(3));
  g.read_seed = rng.next();
  g.num_reads = 4 + static_cast<u32>(rng.below(5));
  g.read_max_len = 500 + static_cast<u32>(rng.below(1'501));
  if (rng.chance(1, 2)) {
    g.band = 64 + static_cast<i32>(rng.below(193));
    if (rng.chance(1, 4)) g.zdrop = 100 + static_cast<i32>(rng.below(301));
  }
  if (rng.chance(1, 2)) g.dirs_budget = (u64{16} << 10) << rng.below(3);
  g.gpu = rng.chance(1, 3);
  g.workers = {1, 2, 8};
  g.shuffle_seed = rng.next();
  if (rng.chance(1, 2)) {
    g.svc_resident_bytes = (u64{32} << 10) << rng.below(3);
    if (rng.chance(1, 3)) g.svc_score_only_bytes = (u64{1} << 20) + rng.below(u64{2} << 20);
    if (rng.chance(1, 3)) g.svc_banded_bytes = u64{512} << 10;
  }
  g.verify_every = 1;
  if (rng.chance(1, 4)) {
    g.fault_seed = rng.next();
    struct Cand {
      const char* site;
      fault::FaultKind kind;
      u32 one_in, max_fires, delay_ms;
    };
    // Absorbed sites (the fallback/degradation ladders must hide them)
    // plus the worker-compute site (fails structurally) and a scheduler
    // delay (reorders batches without changing answers). No kStall — the
    // watchdog path has its own dedicated chaos coverage and a 10 s
    // timeout would dominate the sweep.
    static constexpr Cand kCands[] = {
        {"align.dp.alloc", fault::FaultKind::kError, 3, 0, 0},
        {"align.dirs.spill", fault::FaultKind::kError, 3, 0, 0},
        {"service.worker.compute", fault::FaultKind::kError, 4, 2, 0},
        {"service.queue.delay", fault::FaultKind::kSlow, 2, 0, 2},
        {"gpu.stage_oom", fault::FaultKind::kError, 2, 0, 0},
        {"gpu.launch", fault::FaultKind::kError, 3, 0, 0},
    };
    constexpr std::size_t kNumCands = sizeof(kCands) / sizeof(kCands[0]);
    const std::size_t n = 1 + rng.below(3);
    std::vector<std::size_t> picks;
    while (picks.size() < n) {
      const std::size_t p = rng.below(kNumCands);
      if (std::find(picks.begin(), picks.end(), p) == picks.end()) picks.push_back(p);
    }
    for (const std::size_t p : picks) {
      const Cand& cand = kCands[p];
      g.faults.push_back({cand.site, cand.kind, cand.one_in, cand.max_fires, cand.delay_ms});
    }
  }
  return c;
}

CheckResult check_e2e_case(const E2eCase& c) {
  // A fuzzer harness must never die on an unexpected throw — report it as
  // the divergence it is.
  try {
    return check_e2e_case_impl(c);
  } catch (const std::exception& e) {
    return CheckResult::fail(std::string("unexpected exception: ") + e.what());
  }
}

E2eCase minimize_e2e_case(const E2eCase& input,
                          const std::function<CheckResult(const E2eCase&)>& check) {
  const auto fails = [&](const E2eCase& cand) {
    return !(check ? check(cand) : check_e2e_case(cand)).ok;
  };
  if (!fails(input)) return input;
  E2eCase best = input;

  // Materialize the read set so individual reads can be dropped/trimmed;
  // keep the explicit form only if it still reproduces the failure.
  if (best.reads.empty()) {
    E2eCase cand = best;
    const Workload w = materialize(best);
    for (const Sequence& r : w.reads) cand.reads.push_back(r.codes);
    if (fails(cand)) best = std::move(cand);
  }

  // Greedy chunked read drops: halving chunk sizes, re-running at every
  // step, exactly like the kernel minimizer's sequence trimming.
  for (std::size_t chunk = std::max<std::size_t>(1, best.reads.size() / 2); chunk >= 1;) {
    bool removed = false;
    for (std::size_t at = 0; at + chunk <= best.reads.size();) {
      if (best.reads.size() <= chunk) break;  // keep at least one read
      E2eCase cand = best;
      cand.reads.erase(cand.reads.begin() + static_cast<std::ptrdiff_t>(at),
                       cand.reads.begin() + static_cast<std::ptrdiff_t>(at + chunk));
      if (fails(cand)) {
        best = std::move(cand);
        removed = true;
      } else {
        at += chunk;
      }
    }
    if (chunk == 1 && !removed) break;
    if (!removed) chunk /= 2;
  }

  // Trim surviving reads from the tail.
  for (std::size_t i = 0; i < best.reads.size(); ++i) {
    while (best.reads[i].size() > 64) {
      E2eCase cand = best;
      cand.reads[i].resize(cand.reads[i].size() / 2);
      if (!fails(cand)) break;
      best = std::move(cand);
    }
  }

  // Shrink the reference.
  while (best.cfg.ref_len > 8'000) {
    E2eCase cand = best;
    cand.cfg.ref_len /= 2;
    if (!fails(cand)) break;
    best = std::move(cand);
  }

  // Relax configuration, most-disruptive knobs first, keeping any step
  // that still fails.
  const auto try_step = [&](const std::function<void(E2eCase&)>& mutate) {
    E2eCase cand = best;
    mutate(cand);
    if (fails(cand)) best = std::move(cand);
  };
  try_step([](E2eCase& x) {
    x.cfg.faults.clear();
    x.cfg.fault_seed = 0;
  });
  try_step([](E2eCase& x) { x.cfg.gpu = false; });
  try_step([](E2eCase& x) {
    x.cfg.svc_resident_bytes = 0;
    x.cfg.svc_score_only_bytes = 0;
    x.cfg.svc_banded_bytes = 0;
  });
  try_step([](E2eCase& x) {
    x.cfg.band = 0;
    x.cfg.zdrop = 0;
  });
  try_step([](E2eCase& x) { x.cfg.dirs_budget = 0; });
  try_step([](E2eCase& x) { x.cfg.workers = {1}; });
  return best;
}

E2eStats run_e2e_sweep(const E2eSweepOptions& opt,
                       const std::function<void(const E2eDivergence&)>& on_divergence) {
  E2eStats stats;
  for (u64 seed = opt.first_seed; seed < opt.first_seed + opt.seeds; ++seed) {
    const E2eCase c = make_e2e_case(seed);
    ++stats.cases_run;
    stats.service_runs += c.cfg.workers.size();
    if (has_mem_ladder(c.cfg)) ++stats.service_runs;
    if (!c.cfg.faults.empty()) {
      ++stats.service_runs;
      ++stats.chaos_runs;
    }
    const CheckResult r = check_e2e_case(c);
    if (r.ok) continue;
    E2eDivergence d;
    d.seed = seed;
    d.failure = r.failure;
    d.c = opt.minimize ? minimize_e2e_case(c) : c;
    if (on_divergence) on_divergence(d);
    stats.divergences.push_back(std::move(d));
  }
  return stats;
}

}  // namespace verify
}  // namespace manymap
