// Deterministic mutation fuzzer driving the differential oracle across the
// full kernel matrix:
//   {minimap2, manymap} layouts x {scalar, SSE2, AVX2, AVX-512} ISAs
//   x {global, extension} modes x {score-only, full-path}
//   x {one-piece diff, two-piece diff} families, plus the SIMT block
//   kernel forms (Fig. 4a/4b) at several block widths.
//
// Every case derives from a single u64 seed through a self-contained
// xorshift64* generator (no dependence on base/random so repro files stay
// stable even if the simulation RNG evolves). Generators cover the places
// 8-bit-lane anti-diagonal DP kernels historically break:
//   substitution / indel  — long-read-like error structure,
//   homopolymer           — maximal gap-placement tie ambiguity,
//   length sweep          — vector-width tails (15..65, 127..129, ...),
//   band edge             — extreme |T| / |Q| asymmetry (diagonal clipping),
//   saturation            — scoring near the int8 difference-lane bound on
//                           high-identity pairs with long gaps.
//
// On divergence, the sweep auto-minimizes the case (greedy chunked trimming
// plus base simplification, re-running the oracle at every step) and can
// emit a self-contained text repro replayable by tools/manymap_verify and
// committed under tests/data/regressions/.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "verify/verify.hpp"

namespace manymap {
namespace verify {

/// xorshift64* — tiny, deterministic, platform-independent.
class XorShift {
 public:
  explicit XorShift(u64 seed) : s_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  u64 next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_ * 0x2545f4914f6cdd1dULL;
  }
  /// Uniform in [0, n); n > 0.
  u64 below(u64 n) { return next() % n; }
  /// Uniform in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) { return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1))); }
  /// True with probability num/den.
  bool chance(u64 num, u64 den) { return below(den) < num; }
  u8 base() { return static_cast<u8>(below(4)); }

 private:
  u64 s_;
};

enum class Generator {
  kSubstitution,
  kIndel,
  kHomopolymer,
  kLengthSweep,
  kBandEdge,
  kSaturation,
};
inline constexpr int kNumGenerators = 6;

const char* to_string(Generator g);

/// Sequences + scoring derived deterministically from one seed.
struct FuzzCase {
  u64 seed = 0;
  Generator generator = Generator::kSubstitution;
  std::vector<u8> target;
  std::vector<u8> query;
  ScoreParams params{};
  TwoPieceParams tp{};
};

/// Deterministic: the same seed always yields the same case.
FuzzCase make_case(u64 seed);

/// Long-read-shaped case: a `target_len` random target and an
/// indel-mutated query at PacBio-like error rates, with scoring drawn from
/// the int8-safe pools. Deterministic in (seed, target_len). Used by the
/// long-read sweep and the CI memory-budget smoke.
FuzzCase make_longread_case(u64 seed, i32 target_len);

struct SweepOptions {
  u64 seeds = 256;
  u64 first_seed = 1;
  bool family_diff = true;
  bool family_twopiece = true;
  bool family_simt = true;
  bool family_banded = true;  ///< full-coverage banded DP (global mode only)
  /// Banded diff/two-piece/SIMT kernel cells: each seed derives a covering
  /// band (usually exact, unflagged), a deliberately narrow band (forces
  /// the band-hit -> rerun-unbanded fallback) and a zdrop variant, all
  /// validated against the same unbanded reference through the production
  /// auto-full-fallback contract (see CaseSpec::band).
  bool family_bandfull = true;
  bool minimize = true;      ///< shrink divergent cases before reporting
  i32 simt_max_len = 96;     ///< interpreter is slow; cap SIMT case size
  u64 simt_every = 4;        ///< run SIMT cells on every Nth seed
};

/// Options for the long-read streaming sweep (run_longread_sweep).
struct LongReadOptions {
  u64 seeds = 100;
  u64 first_seed = 1;
  i32 min_len = 1024;  ///< per-seed target length, drawn uniformly
  i32 max_len = 4096;
  /// Also check the kernel score/end cell against the row-band streamed
  /// reference DP (diff-family seeds only; the two-piece reference has no
  /// streamed form).
  bool with_reference = true;
  /// Route every Nth seed's spill through a temp file (FileDirsSpill)
  /// instead of the heap sink, exercising the file I/O path.
  u64 file_spill_every = 8;
};

/// Options for the auto-band mapper sweep (run_autoband_sweep).
struct AutoBandOptions {
  u64 seeds = 64;
  u64 first_seed = 1;
  /// Simulated long reads mapped per seed-derived genome.
  u32 reads_per_seed = 3;
  u32 read_max_len = 8000;
  /// Sweep-level ceiling on band_fallbacks / auto_band_kernels under the
  /// default policy; exceeding it is reported as a divergence.
  double max_fallback_rate = 0.02;
  /// Every Nth seed additionally maps with a hostile 1-wide band policy,
  /// asserting the fallback contract under a deliberately wrong estimator:
  /// results stay bit-identical and the reruns land in band_fallbacks.
  u64 hostile_every = 4;
};

/// Options for the device-agreement sweep (run_gpu_sweep).
struct GpuSweepOptions {
  u64 seeds = 48;
  u64 first_seed = 1;
  i32 min_len = 96;   ///< per-segment target length, drawn uniformly
  i32 max_len = 288;  ///< (the device interpreter cost scales with cells)
  bool minimize = true;  ///< shrink divergent cases before reporting
};

/// Device-vs-CPU agreement for ONE case: replays the case through the
/// offload subsystem (score-mode DP on the simulated device; extension
/// paths completed on the host from the device end cell) and through the
/// spec's host kernel, requiring bit-identical score, end cell and — for
/// path-mode diff cases — CIGAR. kDiff and kTwoPiece families only; the
/// device runs two-piece kernels in score mode, so with_cigar is ignored
/// there. Non-runnable specs and ISA gaps answer ok (nothing to compare).
CheckResult check_gpu_case(const CaseSpec& spec);

/// One confirmed divergence, minimized when SweepOptions::minimize is set.
struct Divergence {
  CaseSpec spec;
  std::string failure;
  u64 seed = 0;
  Generator generator = Generator::kSubstitution;
};

struct ComboStats {
  std::string name;  ///< family/layout/isa/mode/path
  u64 cases = 0;
  u64 divergences = 0;
};

struct SweepStats {
  u64 cases_run = 0;  ///< oracle-validated kernel invocations
  std::vector<ComboStats> combos;
  std::vector<Divergence> divergences;
};

/// Sweep `opt.seeds` fuzz cases across every runnable matrix cell,
/// validating each production result against one shared reference per
/// (case, family, mode). `on_divergence` (optional) fires after
/// minimization, as each divergence is found.
SweepStats run_sweep(const SweepOptions& opt,
                     const std::function<void(const Divergence&)>& on_divergence = {});

/// End-to-end sweep of the diagonal-block dirs streaming path on
/// long-read-sized pairs. Each seed picks one (family, layout, ISA, mode)
/// cell, runs the resident-dirs kernel as the baseline, then replays the
/// identical case through the streaming path at several block heights
/// (degenerate 1-row, a small-budget block, the default block) and through
/// both spill sinks — every replay must be bit-identical in score, end
/// cell and CIGAR. Diff-family seeds additionally check the score/end cell
/// against the row-band streamed reference DP. Divergences are reported
/// un-minimized (cases are large; the failure text names the block
/// configuration).
SweepStats run_longread_sweep(
    const LongReadOptions& opt,
    const std::function<void(const Divergence&)>& on_divergence = {});

/// Device-agreement sweep: each seed builds one offload subsystem with a
/// randomized shape (stream count, staging budget — occasionally tight
/// enough to trip the staging-exhaustion fallback — and block width), then
/// pushes a randomized batch composition (segment count, lengths, modes,
/// families, path flavours, staged through random streams) and requires
/// every segment to agree with the host kernel bit-for-bit. Divergences
/// are minimized against check_gpu_case when opt.minimize is set.
SweepStats run_gpu_sweep(const GpuSweepOptions& opt,
                         const std::function<void(const Divergence&)>& on_divergence = {});

/// Aggregate result of the auto-band sweep: the pass/fail stats plus the
/// counter totals the fallback-rate ceiling is judged on.
struct AutoBandSweepResult {
  SweepStats stats;
  u64 auto_band_kernels = 0;  ///< banded kernel attempts (default policy)
  u64 auto_band_full = 0;     ///< auto-mode kernels that ran full width
  u64 auto_band_sum = 0;      ///< sum of selected bands (default policy)
  u64 band_fallbacks = 0;     ///< band_hit reruns (default policy)
  u64 hostile_fallbacks = 0;  ///< band_hit reruns under the hostile policy
  double fallback_rate = 0.0; ///< band_fallbacks / auto_band_kernels
};

/// Auto-band mapper contract sweep: each seed generates a small genome and
/// simulated long reads, then maps every read twice through the real
/// Mapper — band_mode off vs auto — and requires bit-identical mapping
/// lists (every field, CIGAR included). Counter consistency is asserted
/// (banded attempts and fallbacks are counted, never silent), a hostile
/// undersized-band policy periodically proves the fallback contract under
/// estimator failure, and the default policy's cumulative fallback rate
/// must stay under max_fallback_rate.
AutoBandSweepResult run_autoband_sweep(
    const AutoBandOptions& opt,
    const std::function<void(const Divergence&)>& on_divergence = {});

/// Greedy shrink: chunked trims of both sequences from both ends, then
/// base-to-'A' simplification, keeping every step that still fails the
/// oracle. Returns the smallest failing spec found (== input if the case
/// no longer fails, e.g. a flaky environment).
CaseSpec minimize_case(const CaseSpec& spec);

/// Self-contained text repro. `note` is carried as a comment (typically the
/// oracle failure and originating seed).
std::string format_repro(const CaseSpec& spec, const std::string& note);

/// Parse a repro produced by format_repro (also accepts hand-written ones).
/// On failure returns false and sets *err.
bool parse_repro(const std::string& text, CaseSpec* out, std::string* err);

/// Read + parse a repro file.
bool load_repro_file(const std::string& path, CaseSpec* out, std::string* err);

}  // namespace verify
}  // namespace manymap
