#include "verify/verify.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "align/banded.hpp"
#include "align/reference_dp.hpp"
#include "simt/kernels.hpp"

namespace manymap {
namespace verify {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

DiffArgs diff_args(const CaseSpec& s) {
  DiffArgs a;
  a.target = s.target.data();
  a.tlen = static_cast<i32>(s.target.size());
  a.query = s.query.data();
  a.qlen = static_cast<i32>(s.query.size());
  a.params = s.params;
  a.mode = s.mode;
  a.with_cigar = s.with_cigar;
  a.band = s.band;
  a.zdrop = s.zdrop;
  return a;
}

TwoPieceArgs twopiece_args(const CaseSpec& s) {
  TwoPieceArgs a;
  a.target = s.target.data();
  a.tlen = static_cast<i32>(s.target.size());
  a.query = s.query.data();
  a.qlen = static_cast<i32>(s.query.size());
  a.params = s.tp;
  a.mode = s.mode;
  a.with_cigar = s.with_cigar;
  a.band = s.band;
  a.zdrop = s.zdrop;
  return a;
}

/// Production banded contract, as the Mapper enforces it: run banded, and
/// when the kernel flags band_hit (or the backtrack throws BandHitError)
/// rerun unbanded. An unflagged banded result is bit-identical to the full
/// kernel's, so the final answer always is — except for zdropped results,
/// which are heuristic by design and surface to the checker.
template <typename Args, typename Run>
AlignResult run_banded_with_fallback(Args a, const Run& run) {
  bool retry_full = false;
  AlignResult r;
  try {
    r = run(a);
    retry_full = r.band_hit;
  } catch (const BandHitError&) {
    retry_full = true;
  }
  if (retry_full) {
    a.band = 0;
    a.zdrop = 0;
    r = run(a);
  }
  return r;
}

}  // namespace

const char* to_string(Family family) {
  switch (family) {
    case Family::kDiff: return "diff";
    case Family::kTwoPiece: return "twopiece";
    case Family::kSimt: return "simt";
    case Family::kBanded: return "banded";
  }
  return "?";
}

std::string CaseSpec::combo() const {
  std::string s = to_string(family);
  s += '/';
  s += manymap::to_string(layout);
  s += '/';
  if (family == Family::kSimt) {
    s += fmt("%ut", simt_threads);
  } else if (family == Family::kBanded) {
    s += "fullband";  // the oracle-checkable configuration: band covers all
  } else {
    s += manymap::to_string(isa);
  }
  s += '/';
  s += manymap::to_string(mode);
  s += with_cigar ? "/path" : "/score";
  // Aggregation key, so the label carries the banded *shape*, not the
  // per-case numeric width (which would explode the combo table).
  if (band > 0 && family != Family::kBanded) s += zdrop > 0 ? "/banded+z" : "/banded";
  return s;
}

bool runnable(const CaseSpec& spec) {
  switch (spec.family) {
    case Family::kDiff:
      if (!spec.params.fits_int8()) return false;
      return get_diff_kernel(spec.layout, spec.isa) != nullptr;
    case Family::kTwoPiece:
      if (!spec.tp.fits_int8()) return false;
      return get_twopiece_kernel(spec.layout, spec.isa) != nullptr;
    case Family::kSimt:
      return spec.params.fits_int8() && spec.simt_threads > 0 &&
             spec.simt_threads <= simt::DeviceSpec::v100().max_block_threads;
    case Family::kBanded:
      // i32 DP: no int8 contract. Only global mode exists; a full-coverage
      // band is the only configuration comparable to the reference.
      return spec.mode == AlignMode::kGlobal;
  }
  return false;
}

bool validate_cigar_shape(const Cigar& cigar, u64 t_span, u64 q_span, std::string* why) {
  auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  u64 t = 0, q = 0;
  char prev = '\0';
  for (const CigarOp& op : cigar.ops()) {
    if (op.op != 'M' && op.op != 'D' && op.op != 'I')
      return fail(fmt("unknown op '%c'", op.op));
    if (op.len == 0) return fail(fmt("zero-length '%c' op", op.op));
    if (op.op == prev) return fail(fmt("adjacent '%c' runs not merged", op.op));
    prev = op.op;
    if (op.op != 'I') t += op.len;
    if (op.op != 'D') q += op.len;
  }
  if (t != t_span)
    return fail(fmt("target span %llu != expected %llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(t_span)));
  if (q != q_span)
    return fail(fmt("query span %llu != expected %llu",
                    static_cast<unsigned long long>(q),
                    static_cast<unsigned long long>(q_span)));
  return true;
}

i64 twopiece_cigar_score(const Cigar& cigar, const std::vector<u8>& target,
                         const std::vector<u8>& query, const TwoPieceParams& p) {
  i64 score = 0;
  u64 i = 0, j = 0;
  for (const CigarOp& op : cigar.ops()) {
    if (op.op == 'M') {
      MM_REQUIRE(i + op.len <= target.size() && j + op.len <= query.size(),
                 "two-piece CIGAR overruns the sequences");
      for (u32 k = 0; k < op.len; ++k) score += p.sub(target[i + k], query[j + k]);
      i += op.len;
      j += op.len;
    } else if (op.op == 'D') {
      score -= p.gap_cost(op.len);
      i += op.len;
    } else {
      MM_REQUIRE(op.op == 'I', "unsupported CIGAR op in two-piece scoring");
      score -= p.gap_cost(op.len);
      j += op.len;
    }
  }
  return score;
}

AlignResult run_production(const CaseSpec& spec) {
  return run_production(spec, nullptr);
}

AlignResult run_production(const CaseSpec& spec, detail::KernelArena* arena) {
  MM_REQUIRE(runnable(spec), "case is not runnable on this machine");
  switch (spec.family) {
    case Family::kDiff: {
      DiffArgs a = diff_args(spec);
      a.arena = arena;
      const KernelFn k = get_diff_kernel(spec.layout, spec.isa);
      if (a.band > 0) return run_banded_with_fallback(a, k);
      return k(a);
    }
    case Family::kTwoPiece: {
      TwoPieceArgs a = twopiece_args(spec);
      a.arena = arena;
      const TwoPieceKernelFn k = get_twopiece_kernel(spec.layout, spec.isa);
      if (a.band > 0) return run_banded_with_fallback(a, k);
      return k(a);
    }
    case Family::kSimt: {
      DiffArgs a = diff_args(spec);
      a.arena = arena;
      const auto run = [&](const DiffArgs& args) {
        return simt::gpu_align(args, spec.layout, simt::DeviceSpec::v100(),
                               spec.simt_threads)
            .result;
      };
      if (a.band > 0) return run_banded_with_fallback(a, run);
      return run(a);
    }
    case Family::kBanded: {
      BandedArgs b;
      b.target = spec.target.data();
      b.tlen = static_cast<i32>(spec.target.size());
      b.query = spec.query.data();
      b.qlen = static_cast<i32>(spec.query.size());
      b.params = spec.params;
      // Full coverage by default; spec.band > 0 pins the narrow-band
      // geometry (committed regressions exercise the corner auto-widening,
      // whose advisory band_hit the checker treats as heuristic).
      b.band = spec.band > 0 ? spec.band : std::max(b.tlen, b.qlen) + 1;
      b.with_cigar = spec.with_cigar;
      return banded_global_align(b);
    }
  }
  fatal("unknown kernel family", __FILE__, __LINE__);
}

AlignResult run_production_streamed(const CaseSpec& spec, detail::KernelArena* arena,
                                    DirsSpill* spill, i32 block_rows) {
  MM_REQUIRE(runnable(spec), "case is not runnable on this machine");
  MM_REQUIRE(spec.family == Family::kDiff || spec.family == Family::kTwoPiece,
             "dirs streaming exists for the diff / two-piece kernels only");
  if (spec.family == Family::kDiff) {
    DiffArgs a = diff_args(spec);
    a.arena = arena;
    a.spill = spill;
    a.spill_block_rows = block_rows;
    return get_diff_kernel(spec.layout, spec.isa)(a);
  }
  TwoPieceArgs a = twopiece_args(spec);
  a.arena = arena;
  a.spill = spill;
  a.spill_block_rows = block_rows;
  return get_twopiece_kernel(spec.layout, spec.isa)(a);
}

AlignResult run_reference(const CaseSpec& spec) {
  if (spec.family == Family::kTwoPiece) {
    TwoPieceArgs a = twopiece_args(spec);
    a.with_cigar = true;
    return twopiece_reference_align(a);
  }
  DiffArgs a = diff_args(spec);
  a.with_cigar = true;
  return reference_align(a);
}

CheckResult check_result(const CaseSpec& spec, const AlignResult& got,
                         const AlignResult& ref) {
  // Heuristic results — an advisory band_hit from the reference-rung banded
  // DP, or a zdrop-pruned banded kernel run — confine the path search, so
  // they cannot be compared bit-for-bit. They are still bounded: pruning
  // only removes candidate paths, so the score must never BEAT the
  // reference optimum, and a reported CIGAR must stay self-consistent.
  // (Production kDiff/kTwoPiece/kSimt banded runs never surface band_hit —
  // run_production reruns them unbanded — only zdropped reaches here.)
  if (got.band_hit || got.zdropped) {
    if (got.score > ref.score)
      return CheckResult::fail(fmt("band-confined score %lld beats the reference "
                                   "optimum %lld",
                                   static_cast<long long>(got.score),
                                   static_cast<long long>(ref.score)));
    if (!spec.with_cigar || got.cigar.empty()) return {};
    std::string why;
    const u64 t_span = static_cast<u64>(got.t_end + 1);
    const u64 q_span = static_cast<u64>(got.q_end + 1);
    if (!validate_cigar_shape(got.cigar, t_span, q_span, &why))
      return CheckResult::fail("malformed band-confined CIGAR: " + why);
    const i64 path_score = spec.family == Family::kTwoPiece
                               ? twopiece_cigar_score(got.cigar, spec.target, spec.query,
                                                      spec.tp)
                               : got.cigar.score(spec.target, spec.query, 0, 0, spec.params);
    if (path_score != got.score)
      return CheckResult::fail(fmt("band-confined CIGAR rescoring %lld != reported "
                                   "score %lld",
                                   static_cast<long long>(path_score),
                                   static_cast<long long>(got.score)));
    return {};
  }
  if (got.score != ref.score)
    return CheckResult::fail(fmt("score %lld != reference %lld",
                                 static_cast<long long>(got.score),
                                 static_cast<long long>(ref.score)));
  if (got.t_end != ref.t_end || got.q_end != ref.q_end)
    return CheckResult::fail(fmt("end cell (%d,%d) != reference (%d,%d)", got.t_end,
                                 got.q_end, ref.t_end, ref.q_end));
  if (!spec.with_cigar) {
    if (!got.cigar.empty())
      return CheckResult::fail("score-only result carries a CIGAR");
    return {};
  }
  std::string why;
  // Degenerate global cases align against an empty side: the whole other
  // sequence is one gap op and t_end/q_end stay -1 on the empty axis.
  const u64 t_span = static_cast<u64>(got.t_end + 1);
  const u64 q_span = static_cast<u64>(got.q_end + 1);
  if (!validate_cigar_shape(got.cigar, t_span, q_span, &why))
    return CheckResult::fail("malformed CIGAR: " + why);
  const i64 path_score = spec.family == Family::kTwoPiece
                             ? twopiece_cigar_score(got.cigar, spec.target, spec.query,
                                                    spec.tp)
                             : got.cigar.score(spec.target, spec.query, 0, 0, spec.params);
  if (path_score != got.score)
    return CheckResult::fail(fmt("CIGAR rescoring %lld != reported score %lld",
                                 static_cast<long long>(path_score),
                                 static_cast<long long>(got.score)));
  if (got.cigar.to_string() != ref.cigar.to_string())
    return CheckResult::fail("CIGAR " + got.cigar.to_string() + " != reference " +
                             ref.cigar.to_string());
  return {};
}

CheckResult run_oracle(const CaseSpec& spec) {
  return check_result(spec, run_production(spec), run_reference(spec));
}

namespace {

/// Coordinate sanity shared by the full and score-only live audits.
CheckResult check_live_coordinates(const LiveMapping& m) {
  MM_REQUIRE(m.contig != nullptr && m.query != nullptr,
             "live mapping audit needs contig/query");
  if (m.tend > m.contig->size() || m.tstart > m.tend)
    return CheckResult::fail(fmt("reference span [%llu,%llu) outside contig of %llu",
                                 static_cast<unsigned long long>(m.tstart),
                                 static_cast<unsigned long long>(m.tend),
                                 static_cast<unsigned long long>(m.contig->size())));
  if (m.qend > m.query->size() || m.qstart > m.qend)
    return CheckResult::fail(fmt("query span [%u,%u) outside read of %llu", m.qstart,
                                 m.qend, static_cast<unsigned long long>(m.query->size())));
  return {};
}

}  // namespace

CheckResult check_live_spans(const LiveMapping& m) {
  const CheckResult coords = check_live_coordinates(m);
  if (!coords.ok) return coords;
  // Score-only mappings come straight from chain bounds: a chain always
  // covers at least one anchor, so a degenerate (empty) span on either
  // axis is a coordinate bug, not a legitimate alignment.
  if (m.tend == m.tstart)
    return CheckResult::fail(fmt("score-only mapping has an empty reference span at %llu",
                                 static_cast<unsigned long long>(m.tstart)));
  if (m.qend == m.qstart)
    return CheckResult::fail(fmt("score-only mapping has an empty query span at %u",
                                 m.qstart));
  return {};
}

CheckResult check_live_mapping(const LiveMapping& m, const ScoreParams& params,
                               u64 max_ref_cells, u64 max_stream_cells) {
  MM_REQUIRE(m.cigar != nullptr, "live mapping audit needs a cigar");
  const CheckResult coords = check_live_coordinates(m);
  if (!coords.ok) return coords;
  const u64 t_span = m.tend - m.tstart;
  const u64 q_span = m.qend - m.qstart;
  std::string why;
  if (!validate_cigar_shape(*m.cigar, t_span, q_span, &why))
    return CheckResult::fail("malformed CIGAR: " + why);
  const i64 path_score = m.cigar->score(*m.contig, *m.query, m.tstart, m.qstart, params);
  if (path_score != m.score)
    return CheckResult::fail(fmt("CIGAR rescoring %lld != reported score %lld",
                                 static_cast<long long>(path_score),
                                 static_cast<long long>(m.score)));
  // Reference upper bound: small spans replay the full-matrix DP exactly;
  // larger spans (up to max_stream_cells) replay the row-band streamed
  // reference, whose resident state is O(t_span + q_span) instead of the
  // O(t_span * q_span) int32 matrices — long-read mappings stay auditable.
  const u64 cells = t_span * q_span;
  if (t_span > 0 && q_span > 0 && cells <= std::max(max_ref_cells, max_stream_cells)) {
    const std::vector<u8> target(m.contig->begin() + static_cast<i64>(m.tstart),
                                 m.contig->begin() + static_cast<i64>(m.tend));
    const std::vector<u8> query(m.query->begin() + m.qstart, m.query->begin() + m.qend);
    DiffArgs a;
    a.target = target.data();
    a.tlen = static_cast<i32>(target.size());
    a.query = query.data();
    a.qlen = static_cast<i32>(query.size());
    a.params = params;
    a.mode = AlignMode::kGlobal;
    a.with_cigar = false;
    const AlignResult ref =
        cells <= max_ref_cells ? reference_align(a) : reference_align_streamed(a);
    if (m.score > ref.score)
      return CheckResult::fail(fmt("reported score %lld beats the reference optimum %lld",
                                   static_cast<long long>(m.score),
                                   static_cast<long long>(ref.score)));
  }
  return {};
}

}  // namespace verify
}  // namespace manymap
