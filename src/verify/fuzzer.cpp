#include "verify/fuzzer.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <iterator>
#include <limits>

#include <memory>

#include "align/arena.hpp"
#include "align/dirs_spill.hpp"
#include "align/reference_dp.hpp"
#include "core/mapper.hpp"
#include "core/options.hpp"
#include "gpu/batch_mapper.hpp"
#include "sequence/dna.hpp"
#include "simt/kernels.hpp"
#include "simulate/genome.hpp"
#include "simulate/read_sim.hpp"

namespace manymap {
namespace verify {

namespace {

// Scoring pools. Every entry satisfies the int8 difference-lane contract
// (ScoreParams::fits_int8 / TwoPieceParams::fits_int8); the saturation
// generator picks the boundary entries on purpose.
const ScoreParams kDiffParamsPool[] = {
    ScoreParams{},                 // defaults (2,4,4,2)
    ScoreParams::map_pb(),         // 2,5,4,2
    ScoreParams::map_ont(),        // 2,4,4,2
    ScoreParams{5, 11, 10, 3},     // steep gaps
    ScoreParams{1, 9, 16, 2},      // gap-averse
};
const ScoreParams kDiffBoundaryParams[] = {
    ScoreParams{100, 60, 20, 5},   // match + q + e == 125 (int8 bound)
    ScoreParams{90, 90, 30, 5},    // mismatch-heavy near the bound
};
const TwoPieceParams kTwoPieceParamsPool[] = {
    TwoPieceParams{},                    // minimap2 map-pb style defaults
    TwoPieceParams::map_pb(),            // 2,5,4,2,24,1
    TwoPieceParams{4, 10, 6, 3, 30, 1},  // wider pieces
};
const TwoPieceParams kTwoPieceBoundaryParams[] = {
    TwoPieceParams{90, 80, 20, 15, 34, 1},  // match + max(qk+ek) == 125
};

const i32 kBoundaryLengths[] = {1,  2,  3,  7,  8,  9,  15,  16,  17,  31,  32,  33,
                                63, 64, 65, 95, 96, 97, 127, 128, 129, 255, 256, 257};

std::vector<u8> random_seq(XorShift& rng, i32 n) {
  std::vector<u8> s(static_cast<std::size_t>(n));
  for (auto& b : s) b = rng.chance(1, 20) ? kBaseN : rng.base();
  return s;
}

std::vector<u8> substitute(XorShift& rng, const std::vector<u8>& t, u64 pct) {
  std::vector<u8> q = t;
  for (auto& b : q)
    if (rng.chance(pct, 100)) b = rng.base();
  return q;
}

std::vector<u8> indel_mutate(XorShift& rng, const std::vector<u8>& t, u64 pct) {
  std::vector<u8> q;
  q.reserve(t.size() + 16);
  for (const u8 b : t) {
    const u64 u = rng.below(100);
    if (u < pct * 2 / 5) {
      q.push_back(rng.base());  // substitution
    } else if (u < pct * 7 / 10) {
      q.push_back(b);  // insertion after
      q.push_back(rng.base());
    } else if (u < pct) {
      // deletion
    } else {
      q.push_back(b);
    }
  }
  if (q.empty()) q.push_back(rng.base());
  return q;
}

std::vector<u8> homopolymer_seq(XorShift& rng, i32 approx_len) {
  std::vector<u8> s;
  s.reserve(static_cast<std::size_t>(approx_len) + 16);
  while (static_cast<i32>(s.size()) < approx_len) {
    const u8 b = rng.base();
    const i64 run = rng.range(1, 12);
    for (i64 k = 0; k < run; ++k) s.push_back(b);
  }
  s.resize(static_cast<std::size_t>(approx_len));
  return s;
}

void gen_substitution(XorShift& rng, FuzzCase& c) {
  const i32 len = static_cast<i32>(rng.range(1, 200));
  c.target = random_seq(rng, len);
  c.query = substitute(rng, c.target, 1 + rng.below(30));
}

void gen_indel(XorShift& rng, FuzzCase& c) {
  const i32 len = static_cast<i32>(rng.range(4, 200));
  c.target = random_seq(rng, len);
  c.query = indel_mutate(rng, c.target, 5 + rng.below(25));
}

void gen_homopolymer(XorShift& rng, FuzzCase& c) {
  c.target = homopolymer_seq(rng, static_cast<i32>(rng.range(8, 150)));
  // Same run structure, independently drawn run lengths: maximal gap
  // placement ambiguity stressing deterministic tie-breaking.
  c.query = indel_mutate(rng, c.target, 10 + rng.below(20));
}

void gen_length_sweep(XorShift& rng, FuzzCase& c) {
  // Lengths straddling the 16/32/64-lane chunk boundaries, paired either
  // equal, off-by-one, or against another boundary length.
  const i32 tlen = kBoundaryLengths[rng.below(std::size(kBoundaryLengths))];
  i32 qlen;
  switch (rng.below(3)) {
    case 0: qlen = tlen; break;
    case 1: qlen = std::max<i32>(1, tlen + static_cast<i32>(rng.range(-1, 1))); break;
    default: qlen = kBoundaryLengths[rng.below(std::size(kBoundaryLengths))]; break;
  }
  c.target = random_seq(rng, tlen);
  if (qlen == tlen && rng.chance(1, 2)) {
    c.query = substitute(rng, c.target, 1 + rng.below(15));
  } else {
    c.query = random_seq(rng, qlen);
  }
}

void gen_band_edge(XorShift& rng, FuzzCase& c) {
  // Extreme |T| / |Q| asymmetry: every diagonal is clipped by st/en, the
  // longest ones degenerate to a handful of cells.
  const i32 big = static_cast<i32>(rng.range(100, 400));
  const i32 small = static_cast<i32>(rng.range(1, 8));
  c.target = random_seq(rng, big);
  c.query = random_seq(rng, small);
  if (rng.chance(1, 2)) std::swap(c.target, c.query);
}

void gen_saturation(XorShift& rng, FuzzCase& c) {
  // High-identity pair with one long gap: after the gap closes, u/v lanes
  // swing to their extremes (match + q + e). With boundary parameters this
  // sits exactly on the int8 limit.
  const i32 len = static_cast<i32>(rng.range(80, 250));
  c.target = random_seq(rng, len);
  c.query = c.target;
  const i64 gap = rng.range(20, std::max<i64>(21, len / 2));
  const i64 at = rng.range(0, std::max<i64>(0, len - gap - 1));
  c.query.erase(c.query.begin() + at, c.query.begin() + at + gap);
  if (c.query.empty()) c.query.push_back(0);
  // Sprinkle a few substitutions so match runs restart.
  c.query = substitute(rng, c.query, 1 + rng.below(4));
  c.params = kDiffBoundaryParams[rng.below(std::size(kDiffBoundaryParams))];
  c.tp = kTwoPieceBoundaryParams[rng.below(std::size(kTwoPieceBoundaryParams))];
}

}  // namespace

const char* to_string(Generator g) {
  switch (g) {
    case Generator::kSubstitution: return "substitution";
    case Generator::kIndel: return "indel";
    case Generator::kHomopolymer: return "homopolymer";
    case Generator::kLengthSweep: return "length_sweep";
    case Generator::kBandEdge: return "band_edge";
    case Generator::kSaturation: return "saturation";
  }
  return "?";
}

FuzzCase make_case(u64 seed) {
  FuzzCase c;
  c.seed = seed;
  XorShift rng(seed ^ 0xc0ffee5eedULL);
  c.generator = static_cast<Generator>(rng.below(kNumGenerators));
  c.params = kDiffParamsPool[rng.below(std::size(kDiffParamsPool))];
  c.tp = kTwoPieceParamsPool[rng.below(std::size(kTwoPieceParamsPool))];
  switch (c.generator) {
    case Generator::kSubstitution: gen_substitution(rng, c); break;
    case Generator::kIndel: gen_indel(rng, c); break;
    case Generator::kHomopolymer: gen_homopolymer(rng, c); break;
    case Generator::kLengthSweep: gen_length_sweep(rng, c); break;
    case Generator::kBandEdge: gen_band_edge(rng, c); break;
    case Generator::kSaturation: gen_saturation(rng, c); break;
  }
  return c;
}

FuzzCase make_longread_case(u64 seed, i32 target_len) {
  FuzzCase c;
  c.seed = seed;
  c.generator = Generator::kIndel;
  XorShift rng(seed ^ 0x10a6de5dULL);
  c.params = kDiffParamsPool[rng.below(std::size(kDiffParamsPool))];
  c.tp = kTwoPieceParamsPool[rng.below(std::size(kTwoPieceParamsPool))];
  c.target = random_seq(rng, target_len);
  // PacBio-like combined error rate: 8–17% substitutions + indels.
  c.query = indel_mutate(rng, c.target, 8 + rng.below(10));
  return c;
}

namespace {

std::string fmt_failure(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

struct ComboTable {
  std::vector<ComboStats> combos;

  ComboStats& at(const std::string& name) {
    for (auto& c : combos)
      if (c.name == name) return c;
    combos.push_back(ComboStats{name, 0, 0});
    return combos.back();
  }
};

/// Validate one matrix cell against a precomputed reference; on divergence
/// minimize and report. `arena` is shared across every cell of the seed,
/// so each invocation runs on a workspace left dirty by a *different*
/// kernel/layout/shape — the harshest reuse pattern the production path
/// can see (minimization replays arena-less, to keep repros standalone).
void run_cell(const CaseSpec& spec, const AlignResult& ref, const FuzzCase& fc,
              const SweepOptions& opt, SweepStats& stats, ComboTable& table,
              const std::function<void(const Divergence&)>& on_divergence,
              detail::KernelArena& arena) {
  if (!runnable(spec)) return;
  ComboStats& combo = table.at(spec.combo());
  ++combo.cases;
  ++stats.cases_run;
  const CheckResult check = check_result(spec, run_production(spec, &arena), ref);
  if (check.ok) return;
  ++combo.divergences;
  Divergence div;
  div.spec = opt.minimize ? minimize_case(spec) : spec;
  div.failure = run_oracle(div.spec).failure;
  if (div.failure.empty()) div.failure = check.failure;  // minimization lost it
  div.seed = fc.seed;
  div.generator = fc.generator;
  stats.divergences.push_back(div);
  if (on_divergence) on_divergence(stats.divergences.back());
}

}  // namespace

SweepStats run_sweep(const SweepOptions& opt,
                     const std::function<void(const Divergence&)>& on_divergence) {
  SweepStats stats;
  ComboTable table;
  const std::vector<Isa> isas = available_isas();
  const u32 simt_widths[] = {32, 64};

  for (u64 i = 0; i < opt.seeds; ++i) {
    const u64 seed = opt.first_seed + i;
    const FuzzCase fc = make_case(seed);
    // One arena per seed, reused across every (family x layout x ISA x
    // mode x path) cell: each kernel runs on whatever the previous one
    // left behind, continuously exercising the dirty-reuse invariant.
    detail::KernelArena arena;

    CaseSpec base;
    base.target = fc.target;
    base.query = fc.query;
    base.params = fc.params;
    base.tp = fc.tp;

    // Band configurations shared by every banded cell of the seed: one
    // covering band (wide enough that the optimum usually stays inside —
    // the exactness half of the contract), one deliberately narrow band
    // (below the corner's diagonal offset more often than not — the
    // band-hit -> rerun-unbanded fallback half), and the covering band
    // with adaptive zdrop (heuristic results, bounded by the reference).
    struct BandCfg {
      i32 band, zdrop;
    };
    XorShift brng(seed ^ 0xba7df07dULL);
    const i32 slope = static_cast<i32>(fc.target.size() > fc.query.size()
                                           ? fc.target.size() - fc.query.size()
                                           : fc.query.size() - fc.target.size());
    const BandCfg band_cfgs[] = {
        {slope + static_cast<i32>(brng.range(4, 24)), 0},
        {static_cast<i32>(brng.range(1, std::max<i32>(2, slope + 2))), 0},
        {slope + static_cast<i32>(brng.range(4, 24)),
         static_cast<i32>(brng.range(10, 120))},
    };

    for (const AlignMode mode : {AlignMode::kGlobal, AlignMode::kExtension}) {
      base.mode = mode;

      if (opt.family_diff || opt.family_simt || opt.family_banded ||
          opt.family_bandfull) {
        base.family = Family::kDiff;
        const AlignResult ref = run_reference(base);
        if (opt.family_diff) {
          for (const Layout layout : {Layout::kMinimap2, Layout::kManymap})
            for (const Isa isa : isas)
              for (const bool cigar : {false, true}) {
                CaseSpec spec = base;
                spec.family = Family::kDiff;
                spec.layout = layout;
                spec.isa = isa;
                spec.with_cigar = cigar;
                run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
              }
        }
        if (opt.family_bandfull) {
          for (const BandCfg& bc : band_cfgs)
            for (const Layout layout : {Layout::kMinimap2, Layout::kManymap})
              for (const Isa isa : isas)
                for (const bool cigar : {false, true}) {
                  CaseSpec spec = base;
                  spec.family = Family::kDiff;
                  spec.layout = layout;
                  spec.isa = isa;
                  spec.with_cigar = cigar;
                  spec.band = bc.band;
                  spec.zdrop = bc.zdrop;
                  run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
                }
        }
        const bool simt_sized =
            static_cast<i32>(fc.target.size()) <= opt.simt_max_len &&
            static_cast<i32>(fc.query.size()) <= opt.simt_max_len;
        if (opt.family_banded) {
          // Banded shares the diff reference: a full-coverage band (the
          // fallback ladder's last rung) must match it bit-for-bit. Layout
          // does not apply — one cell per path flavour. runnable() filters
          // extension mode (only global banded exists).
          for (const bool cigar : {false, true}) {
            CaseSpec spec = base;
            spec.family = Family::kBanded;
            spec.with_cigar = cigar;
            run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
          }
        }
        if ((opt.family_simt || opt.family_bandfull) && simt_sized &&
            seed % opt.simt_every == 0) {
          for (const Layout layout : {Layout::kMinimap2, Layout::kManymap})
            for (const u32 threads : simt_widths)
              for (const bool cigar : {false, true}) {
                CaseSpec spec = base;
                spec.family = Family::kSimt;
                spec.layout = layout;
                spec.simt_threads = threads;
                spec.with_cigar = cigar;
                if (opt.family_simt)
                  run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
                if (opt.family_bandfull) {
                  // One banded cell per (layout, width, path): covering
                  // band on the score flavour, narrow (fallback-forcing)
                  // band on the path flavour — the interpreter is too slow
                  // for the full band_cfgs sweep at every cell.
                  const BandCfg& bc = band_cfgs[cigar ? 1 : 0];
                  spec.band = bc.band;
                  spec.zdrop = bc.zdrop;
                  run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
                }
              }
        }
      }

      if (opt.family_twopiece || opt.family_bandfull) {
        base.family = Family::kTwoPiece;
        const AlignResult ref = run_reference(base);
        for (const Layout layout : {Layout::kMinimap2, Layout::kManymap})
          for (const Isa isa : isas)
            for (const bool cigar : {false, true}) {
              CaseSpec spec = base;
              spec.family = Family::kTwoPiece;
              spec.layout = layout;
              spec.isa = isa;
              spec.with_cigar = cigar;
              if (opt.family_twopiece)
                run_cell(spec, ref, fc, opt, stats, table, on_divergence, arena);
              if (opt.family_bandfull)
                for (const BandCfg& bc : band_cfgs) {
                  CaseSpec banded = spec;
                  banded.band = bc.band;
                  banded.zdrop = bc.zdrop;
                  run_cell(banded, ref, fc, opt, stats, table, on_divergence, arena);
                }
            }
      }
    }
  }
  stats.combos = std::move(table.combos);
  std::sort(stats.combos.begin(), stats.combos.end(),
            [](const ComboStats& a, const ComboStats& b) { return a.name < b.name; });
  return stats;
}

SweepStats run_longread_sweep(const LongReadOptions& opt,
                              const std::function<void(const Divergence&)>& on_divergence) {
  SweepStats stats;
  ComboTable table;
  const std::vector<Isa> isas = available_isas();
  // One arena for the whole sweep: every kernel — resident or streamed —
  // runs on workspace left dirty by a different seed, layout and shape.
  detail::KernelArena arena;

  for (u64 n = 0; n < opt.seeds; ++n) {
    const u64 seed = opt.first_seed + n;
    XorShift pick(seed * 0x9e3779b97f4a7c15ULL + 0x5eedf00dULL);
    const i32 len =
        static_cast<i32>(pick.range(opt.min_len, std::max(opt.min_len, opt.max_len)));
    const FuzzCase fc = make_longread_case(seed, len);

    CaseSpec spec;
    spec.family = (seed & 1) != 0 ? Family::kTwoPiece : Family::kDiff;
    spec.layout = pick.chance(1, 2) ? Layout::kMinimap2 : Layout::kManymap;
    spec.isa = isas[pick.below(isas.size())];
    spec.mode = pick.chance(1, 2) ? AlignMode::kExtension : AlignMode::kGlobal;
    spec.with_cigar = true;
    spec.params = fc.params;
    spec.tp = fc.tp;
    spec.target = fc.target;
    spec.query = fc.query;
    if (!runnable(spec)) continue;  // pool params always fit int8; ISA gaps only

    ComboStats& combo = table.at("longread/" + spec.combo());
    auto report = [&](std::string why) {
      ++combo.divergences;
      Divergence div;
      div.spec = spec;  // un-minimized: long-read cases stay as generated
      div.failure = std::move(why);
      div.seed = seed;
      div.generator = fc.generator;
      stats.divergences.push_back(div);
      if (on_divergence) on_divergence(stats.divergences.back());
    };

    // Resident-dirs baseline, self-checked (shape + rescoring) so a broken
    // baseline cannot silently "agree" with an equally broken stream.
    const AlignResult resident = run_production(spec, &arena);
    ++stats.cases_run;
    ++combo.cases;
    std::string why;
    if (!validate_cigar_shape(resident.cigar, static_cast<u64>(resident.t_end + 1),
                              static_cast<u64>(resident.q_end + 1), &why)) {
      report("resident baseline has malformed CIGAR: " + why);
      continue;
    }
    const i64 rescore =
        spec.family == Family::kTwoPiece
            ? twopiece_cigar_score(resident.cigar, spec.target, spec.query, spec.tp)
            : resident.cigar.score(spec.target, spec.query, 0, 0, spec.params);
    if (rescore != resident.score) {
      report(fmt_failure("resident baseline CIGAR rescoring %lld != score %lld",
                         static_cast<long long>(rescore),
                         static_cast<long long>(resident.score)));
      continue;
    }

    // Streamed replays: degenerate one-row blocks, a small-budget block,
    // and the default block, through heap and (periodically) file sinks.
    const i32 tl = static_cast<i32>(spec.target.size());
    const i32 ql = static_cast<i32>(spec.query.size());
    struct StreamRun {
      const char* name;
      i32 rows;
      bool file;
    };
    const bool file_seed = opt.file_spill_every > 0 && seed % opt.file_spill_every == 0;
    const StreamRun runs[] = {
        {"rows=1", 1, false},
        {"budget=256KiB", spill_rows_for_budget(tl, ql, u64{256} << 10), file_seed},
        {"default-block", 0, false},
    };
    for (const StreamRun& r : runs) {
      const std::unique_ptr<DirsSpill> sink =
          r.file ? std::unique_ptr<DirsSpill>(std::make_unique<FileDirsSpill>())
                 : std::unique_ptr<DirsSpill>(std::make_unique<MemDirsSpill>());
      const AlignResult streamed = run_production_streamed(spec, &arena, sink.get(), r.rows);
      ++stats.cases_run;
      ++combo.cases;
      if (streamed.score != resident.score || streamed.t_end != resident.t_end ||
          streamed.q_end != resident.q_end) {
        report(fmt_failure("streamed (%s, %s sink) score/end %lld/(%d,%d) != resident "
                           "%lld/(%d,%d)",
                           r.name, r.file ? "file" : "mem",
                           static_cast<long long>(streamed.score), streamed.t_end,
                           streamed.q_end, static_cast<long long>(resident.score),
                           resident.t_end, resident.q_end));
        continue;
      }
      if (streamed.cigar.to_string() != resident.cigar.to_string()) {
        report(fmt_failure("streamed (%s, %s sink) CIGAR differs from resident", r.name,
                           r.file ? "file" : "mem"));
      }
    }

    // Row-band streamed reference: score/end cell must match the kernel
    // (one-piece model only; the two-piece reference has no streamed form).
    if (opt.with_reference && spec.family == Family::kDiff) {
      DiffArgs a;
      a.target = spec.target.data();
      a.tlen = tl;
      a.query = spec.query.data();
      a.qlen = ql;
      a.params = spec.params;
      a.mode = spec.mode;
      a.with_cigar = false;
      const AlignResult ref = reference_align_streamed(a);
      ++stats.cases_run;
      ++combo.cases;
      if (ref.score != resident.score || ref.t_end != resident.t_end ||
          ref.q_end != resident.q_end)
        report(fmt_failure("row-band reference score/end %lld/(%d,%d) != kernel "
                           "%lld/(%d,%d)",
                           static_cast<long long>(ref.score), ref.t_end, ref.q_end,
                           static_cast<long long>(resident.score), resident.t_end,
                           resident.q_end));
    }
  }
  stats.combos = std::move(table.combos);
  std::sort(stats.combos.begin(), stats.combos.end(),
            [](const ComboStats& a, const ComboStats& b) { return a.name < b.name; });
  return stats;
}

namespace {

using FailsFn = std::function<bool(const CaseSpec&)>;

/// Try dropping `n` elements from the front or back of one sequence.
bool try_trim(CaseSpec& spec, const FailsFn& fails, bool target_seq, bool front,
              std::size_t n) {
  std::vector<u8>& s = target_seq ? spec.target : spec.query;
  if (s.size() < n || n == 0) return false;
  const std::vector<u8> saved = s;
  if (front) {
    s.erase(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
  } else {
    s.resize(s.size() - n);
  }
  if (fails(spec)) return true;
  s = saved;
  return false;
}

/// Predicate-generic shrink shared by the oracle and device minimizers.
CaseSpec minimize_spec(const CaseSpec& spec, const FailsFn& fails) {
  if (!fails(spec)) return spec;
  CaseSpec cur = spec;
  // Phase 1: chunked trimming from both ends of both sequences.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const bool target_seq : {true, false}) {
      std::size_t chunk =
          std::max<std::size_t>(1, (target_seq ? cur.target : cur.query).size() / 2);
      while (chunk >= 1) {
        while (try_trim(cur, fails, target_seq, /*front=*/false, chunk)) progress = true;
        while (try_trim(cur, fails, target_seq, /*front=*/true, chunk)) progress = true;
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
  }
  // Phase 2: canonicalize bases to 'A' where the failure persists (bounded;
  // the SIMT interpreter makes oracle replays expensive on big cases).
  if (cur.target.size() + cur.query.size() <= 192) {
    for (const bool target_seq : {true, false}) {
      std::vector<u8>& s = target_seq ? cur.target : cur.query;
      for (auto& b : s) {
        if (b == 0) continue;
        const u8 saved = b;
        b = 0;
        if (!fails(cur)) b = saved;
      }
    }
  }
  return cur;
}

}  // namespace

CaseSpec minimize_case(const CaseSpec& spec) {
  return minimize_spec(spec, [](const CaseSpec& s) { return !run_oracle(s).ok; });
}

namespace {

/// DiffArgs view of a CaseSpec (score params; sequences stay owned by spec).
DiffArgs diff_args_of(const CaseSpec& spec, bool with_cigar) {
  DiffArgs a;
  a.target = spec.target.data();
  a.tlen = static_cast<i32>(spec.target.size());
  a.query = spec.query.data();
  a.qlen = static_cast<i32>(spec.query.size());
  a.params = spec.params;
  a.mode = spec.mode;
  a.with_cigar = with_cigar;
  return a;
}

/// Device-vs-CPU check for one diff-family segment through the production
/// offload path (staging, score-on-device, path-on-host completion).
CheckResult check_gpu_diff(const CaseSpec& spec, gpu::GpuBatchMapper& mapper, u32 stream) {
  const DiffArgs a = diff_args_of(spec, spec.with_cigar);
  const AlignResult cpu = mapper.config().host_kernel(a);
  const gpu::GpuBatchMapper::SegmentResult seg = mapper.align_segment(a, stream);
  if (seg.result.score != cpu.score || seg.result.t_end != cpu.t_end ||
      seg.result.q_end != cpu.q_end)
    return CheckResult::fail(fmt_failure(
        "gpu segment score/end %lld/(%d,%d) != cpu %lld/(%d,%d)%s",
        static_cast<long long>(seg.result.score), seg.result.t_end, seg.result.q_end,
        static_cast<long long>(cpu.score), cpu.t_end, cpu.q_end,
        seg.on_device ? "" : " [cpu-fallback path]"));
  if (spec.with_cigar && seg.result.cigar.to_string() != cpu.cigar.to_string())
    return CheckResult::fail("gpu path-split CIGAR differs from cpu path");
  return {};
}

/// Device-vs-CPU check for one two-piece segment (device runs score mode).
CheckResult check_gpu_twopiece(const CaseSpec& spec, TwoPieceKernelFn cpu_kernel) {
  TwoPieceArgs a;
  a.target = spec.target.data();
  a.tlen = static_cast<i32>(spec.target.size());
  a.query = spec.query.data();
  a.qlen = static_cast<i32>(spec.query.size());
  a.params = spec.tp;
  a.mode = spec.mode;
  a.with_cigar = false;
  const AlignResult cpu = cpu_kernel(a);
  const simt::GpuAlignResult dev =
      simt::gpu_align_twopiece(a, spec.layout, simt::DeviceSpec::v100(), spec.simt_threads);
  if (dev.result.score != cpu.score || dev.result.t_end != cpu.t_end ||
      dev.result.q_end != cpu.q_end)
    return CheckResult::fail(fmt_failure(
        "gpu twopiece score/end %lld/(%d,%d) != cpu %lld/(%d,%d)",
        static_cast<long long>(dev.result.score), dev.result.t_end, dev.result.q_end,
        static_cast<long long>(cpu.score), cpu.t_end, cpu.q_end));
  return {};
}

}  // namespace

CheckResult check_gpu_case(const CaseSpec& spec) {
  if (!runnable(spec)) return {};
  if (spec.family == Family::kTwoPiece) {
    const TwoPieceKernelFn k = get_twopiece_kernel(spec.layout, spec.isa);
    if (k == nullptr) return {};
    return check_gpu_twopiece(spec, k);
  }
  gpu::GpuBatchConfig cfg;
  cfg.layout = spec.layout;
  cfg.threads_per_block = spec.simt_threads;
  cfg.num_streams = 1;
  cfg.staging_bytes =
      std::max<u64>(u64{1} << 20, 2 * (spec.target.size() + spec.query.size()));
  cfg.min_gpu_cells = 1;  // force the device even on minimized cases
  cfg.host_kernel = get_diff_kernel(spec.layout, spec.isa);
  if (cfg.host_kernel == nullptr) return {};
  gpu::GpuBatchMapper mapper(cfg);
  return check_gpu_diff(spec, mapper, 0);
}

SweepStats run_gpu_sweep(const GpuSweepOptions& opt,
                         const std::function<void(const Divergence&)>& on_divergence) {
  SweepStats stats;
  ComboTable table;
  const std::vector<Isa> isas = available_isas();
  const u32 stream_counts[] = {1, 2, 3, 4, 8};
  const u32 block_widths[] = {64, 128, 256};
  const auto gpu_fails = [](const CaseSpec& s) { return !check_gpu_case(s).ok; };

  for (u64 n = 0; n < opt.seeds; ++n) {
    const u64 seed = opt.first_seed + n;
    XorShift pick(seed * 0x9e3779b97f4a7c15ULL + 0x6b75da5eULL);

    // One offload subsystem per seed with a randomized shape. A quarter of
    // the seeds get a deliberately tiny staging area so segments trip the
    // staging-exhaustion fallback mid-batch — the fallback must stay
    // bit-identical, not just the happy path.
    gpu::GpuBatchConfig cfg;
    cfg.layout = pick.chance(1, 2) ? Layout::kMinimap2 : Layout::kManymap;
    cfg.threads_per_block = block_widths[pick.below(std::size(block_widths))];
    cfg.num_streams = stream_counts[pick.below(std::size(stream_counts))];
    cfg.staging_bytes =
        pick.chance(1, 4) ? (u64{256}) * cfg.num_streams : (u64{1} << 20);
    cfg.min_gpu_cells = 1;
    const Isa isa = isas[pick.below(isas.size())];
    cfg.host_kernel = get_diff_kernel(cfg.layout, isa);
    if (cfg.host_kernel == nullptr) continue;  // ISA gap on this machine
    gpu::GpuBatchMapper mapper(cfg);
    const TwoPieceKernelFn tp_kernel = get_twopiece_kernel(cfg.layout, isa);

    // Randomized batch composition: 2..6 segments of mixed lengths, modes,
    // families and path flavours, staged through random streams.
    const u64 nsegs = 2 + pick.below(5);
    for (u64 i = 0; i < nsegs; ++i) {
      const i32 len =
          static_cast<i32>(pick.range(opt.min_len, std::max(opt.min_len, opt.max_len)));
      const FuzzCase fc = make_longread_case(seed * 131 + i, len);
      CaseSpec spec;
      spec.layout = cfg.layout;
      spec.isa = isa;
      spec.simt_threads = cfg.threads_per_block;
      spec.mode = pick.chance(1, 2) ? AlignMode::kExtension : AlignMode::kGlobal;
      spec.params = fc.params;
      spec.tp = fc.tp;
      spec.target = fc.target;
      spec.query = fc.query;
      const bool twopiece = tp_kernel != nullptr && pick.chance(1, 3);
      spec.family = twopiece ? Family::kTwoPiece : Family::kDiff;
      spec.with_cigar = twopiece ? false : pick.chance(1, 2);
      if (!runnable(spec)) continue;
      const u32 stream = static_cast<u32>(pick.below(cfg.num_streams));

      ComboStats& combo = table.at("gpu/" + spec.combo());
      ++combo.cases;
      ++stats.cases_run;
      const CheckResult check =
          twopiece ? check_gpu_twopiece(spec, tp_kernel) : check_gpu_diff(spec, mapper, stream);
      if (check.ok) continue;
      ++combo.divergences;
      Divergence div;
      div.spec = opt.minimize ? minimize_spec(spec, gpu_fails) : spec;
      div.failure = check_gpu_case(div.spec).failure;
      if (div.failure.empty()) div.failure = check.failure;  // minimization lost it
      div.seed = seed;
      div.generator = fc.generator;
      stats.divergences.push_back(div);
      if (on_divergence) on_divergence(stats.divergences.back());
    }
  }
  stats.combos = std::move(table.combos);
  std::sort(stats.combos.begin(), stats.combos.end(),
            [](const ComboStats& a, const ComboStats& b) { return a.name < b.name; });
  return stats;
}

namespace {

bool autoband_mappings_equal(const Mapping& a, const Mapping& b) {
  return a.qstart == b.qstart && a.qend == b.qend && a.rev == b.rev && a.rid == b.rid &&
         a.tstart == b.tstart && a.tend == b.tend && a.score == b.score &&
         a.chain_score == b.chain_score && a.mapq == b.mapq && a.primary == b.primary &&
         a.matches == b.matches && a.align_length == b.align_length && a.cigar == b.cigar;
}

/// First field-level difference between two mapping lists; empty when they
/// are bit-identical.
std::string autoband_diff(const std::vector<Mapping>& got, const std::vector<Mapping>& want) {
  if (got.size() != want.size())
    return fmt_failure("%zu mappings vs %zu unbanded", got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (autoband_mappings_equal(got[i], want[i])) continue;
    const Mapping& g = got[i];
    const Mapping& w = want[i];
    return fmt_failure(
        "mapping %zu differs: t[%llu,%llu) q[%u,%u) score=%lld cigar=%s vs "
        "t[%llu,%llu) q[%u,%u) score=%lld cigar=%s",
        i, static_cast<unsigned long long>(g.tstart), static_cast<unsigned long long>(g.tend),
        g.qstart, g.qend, static_cast<long long>(g.score),
        g.cigar.empty() ? "-" : g.cigar.to_string().c_str(),
        static_cast<unsigned long long>(w.tstart), static_cast<unsigned long long>(w.tend),
        w.qstart, w.qend, static_cast<long long>(w.score),
        w.cigar.empty() ? "-" : w.cigar.to_string().c_str());
  }
  return {};
}

}  // namespace

AutoBandSweepResult run_autoband_sweep(
    const AutoBandOptions& opt,
    const std::function<void(const Divergence&)>& on_divergence) {
  AutoBandSweepResult res;
  ComboStats identity{"autoband/identity", 0, 0};
  ComboStats counters{"autoband/counters", 0, 0};
  ComboStats hostile{"autoband/hostile", 0, 0};
  ComboStats rate{"autoband/fallback-rate", 0, 0};
  auto report = [&](ComboStats& combo, u64 seed, std::string failure) {
    ++combo.divergences;
    Divergence d;
    d.seed = seed;
    d.failure = std::move(failure);
    res.stats.divergences.push_back(std::move(d));
    if (on_divergence) on_divergence(res.stats.divergences.back());
  };

  for (u64 s = 0; s < opt.seeds; ++s) {
    const u64 seed = opt.first_seed + s;
    XorShift rng(seed * 0x51ed2701a0b3c2e5ULL + 17);

    GenomeParams gp;
    gp.total_length = 24'000 + rng.below(24'001);
    gp.num_contigs = 1 + static_cast<u32>(rng.below(2));
    gp.seed = seed * 77 + 3;
    gp.repeat_families = 2;  // scaled to tens-of-kbp genomes, as in e2e
    gp.repeat_copies = 4;
    gp.repeat_length = 300;
    const Reference ref = generate_genome(gp);

    const MapOptions base = rng.chance(1, 2) ? MapOptions::map_pb() : MapOptions::map_ont();
    MapOptions opt_off = base;
    opt_off.band_mode = BandMode::kOff;
    MapOptions opt_auto = base;
    opt_auto.band_mode = BandMode::kAuto;

    ReadSimParams rp;
    rp.num_reads = opt.reads_per_seed;
    rp.seed = seed * 131 + 7;
    rp.profile = rng.chance(1, 2) ? ErrorProfile::pacbio() : ErrorProfile::nanopore();
    rp.profile.max_length = std::min(rp.profile.max_length, opt.read_max_len);
    rp.profile.min_length = std::min(rp.profile.min_length, rp.profile.max_length);
    ReadSimulator sim(ref, rp);
    const auto reads = sim.simulate();

    const MinimizerIndex index = MinimizerIndex::build(ref, base.sketch);
    const Mapper mapper_off(ref, index, opt_off);
    const Mapper mapper_auto(ref, index, opt_auto);
    const bool hostile_seed = opt.hostile_every > 0 && s % opt.hostile_every == 0;
    std::unique_ptr<Mapper> mapper_hostile, mapper_hostile_off;
    if (hostile_seed) {
      MapOptions opt_h = base;
      opt_h.band_mode = BandMode::kAuto;
      // A worst-case estimator: 1-wide bands with zero indel headroom. On
      // real indel-noised reads the optimum leaves this band constantly —
      // every escape must be counted and rerun, never silently wrong.
      opt_h.auto_band.slack = 1;
      opt_h.auto_band.indel_frac = 0.0;
      opt_h.auto_band.indel_sd_mult = 0.0;
      opt_h.auto_band.ext_bias_frac = 0.0;
      opt_h.auto_band.ext_band_max_len = std::numeric_limits<i32>::max();
      mapper_hostile = std::make_unique<Mapper>(ref, index, opt_h);
      // The off-mode baseline must share the hostile policy knobs: the
      // huge-gap advisory band (banded_global_align, no rerun contract)
      // is derived from the SAME policy in off and auto modes — that is
      // what makes auto ≡ off hold — so comparing across two different
      // policies would diverge there by design, not by bug.
      MapOptions opt_h_off = opt_h;
      opt_h_off.band_mode = BandMode::kOff;
      mapper_hostile_off = std::make_unique<Mapper>(ref, index, opt_h_off);
    }

    for (const auto& sr : reads) {
      ++res.stats.cases_run;
      ++identity.cases;
      MapTimings t_off, t_auto;
      const auto m_off = mapper_off.map(sr.read, &t_off);
      const auto m_auto = mapper_auto.map(sr.read, &t_auto);
      std::string diff = autoband_diff(m_auto, m_off);
      if (!diff.empty())
        report(identity, seed,
               fmt_failure("seed %llu read %s auto vs off: %s",
                           static_cast<unsigned long long>(seed), sr.read.name.c_str(),
                           diff.c_str()));

      ++counters.cases;
      if (t_off.auto_band_kernels + t_off.auto_band_full + t_off.auto_band_sum +
              t_off.band_fallbacks >
          0)
        report(counters, seed, "off-mode map reported auto-band/fallback counters");
      if (t_auto.band_fallbacks > t_auto.auto_band_kernels)
        report(counters, seed,
               fmt_failure("band_fallbacks=%llu exceeds banded attempts=%llu",
                           static_cast<unsigned long long>(t_auto.band_fallbacks),
                           static_cast<unsigned long long>(t_auto.auto_band_kernels)));
      if ((t_auto.auto_band_kernels == 0) != (t_auto.auto_band_sum == 0))
        report(counters, seed, "auto_band_sum inconsistent with auto_band_kernels");
      res.auto_band_kernels += t_auto.auto_band_kernels;
      res.auto_band_full += t_auto.auto_band_full;
      res.auto_band_sum += t_auto.auto_band_sum;
      res.band_fallbacks += t_auto.band_fallbacks;

      if (hostile_seed) {
        ++hostile.cases;
        MapTimings t_h;
        const auto m_h = mapper_hostile->map(sr.read, &t_h);
        const auto m_h_off = mapper_hostile_off->map(sr.read);
        diff = autoband_diff(m_h, m_h_off);
        if (!diff.empty())
          report(hostile, seed,
                 fmt_failure("seed %llu read %s hostile-band vs off: %s",
                             static_cast<unsigned long long>(seed), sr.read.name.c_str(),
                             diff.c_str()));
        res.hostile_fallbacks += t_h.band_fallbacks;
      }
    }
  }

  if (res.auto_band_kernels > 0)
    res.fallback_rate = static_cast<double>(res.band_fallbacks) /
                        static_cast<double>(res.auto_band_kernels);
  ++rate.cases;
  if (res.auto_band_kernels > 0 && res.fallback_rate > opt.max_fallback_rate)
    report(rate, opt.first_seed,
           fmt_failure("fallback rate %.4f exceeds ceiling %.4f (%llu/%llu)",
                       res.fallback_rate, opt.max_fallback_rate,
                       static_cast<unsigned long long>(res.band_fallbacks),
                       static_cast<unsigned long long>(res.auto_band_kernels)));
  if (hostile.cases > 0 && res.hostile_fallbacks == 0)
    report(hostile, opt.first_seed,
           "hostile 1-wide band policy produced zero band_fallbacks — "
           "escapes are not being counted");

  res.stats.combos = {identity, counters, hostile, rate};
  return res;
}

}  // namespace verify
}  // namespace manymap
