// Deterministic end-to-end fuzzer over whole serving scenarios (e2e.hpp):
// each seed derives an E2eCase spanning worker counts, shuffled submission
// orders, the degradation ladder and an armed fault plan; check_e2e_case
// replays it through the real Mapper::map and AlignmentService paths and
// asserts the determinism contract. Divergent cases shrink through the
// whole-mapper greedy minimizer (drop reads -> shrink reads/reference ->
// relax config) before being reported, so committed regressions stay
// small.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "verify/e2e.hpp"

namespace manymap {
namespace verify {

/// Deterministic: the same seed always yields the same case. Cases span
/// the knob space described in e2e.hpp — roughly half arm a memory-ladder
/// service run, a quarter arm a fault plan, a third run the device rung.
E2eCase make_e2e_case(u64 seed);

/// Replay one case through every phase its config enables and check the
/// end-to-end determinism contract (see e2e.hpp). Phases, in order:
///   1. baseline        resident Mapper::map per read, each mapping
///                      audited by the live oracle; plus a score-only
///                      baseline for the degraded comparisons;
///   2. rungs           streamed-dirs / banded / gpu replays must be
///                      bit-identical to the baseline (banded with
///                      zdrop > 0 is advisory: self-audit only);
///                      score-only must be bit-identical to the
///                      score-only baseline and locus-consistent with
///                      the full baseline;
///   3. service         one run per worker count, shuffled submission,
///                      live verify armed: responses bit-identical to
///                      the baseline, zero oracle divergences;
///   4. memory ladder   a service run under the svc_* thresholds: each
///                      response checked against the rung its degrade
///                      level names; degraded answers must have been
///                      audited (verified_degraded > 0);
///   5. chaos           the service run repeated under the armed fault
///                      plan: every request resolves terminally, kOk
///                      answers still honor the contract, zero oracle
///                      divergences, and a post-chaos replay is clean.
CheckResult check_e2e_case(const E2eCase& c);

/// Greedy whole-mapper shrink: materialize the read set, drop reads in
/// chunks, trim read tails, halve the reference, then relax config
/// (faults -> gpu -> memory ladder -> band -> dirs budget -> workers),
/// keeping every step that still fails check_e2e_case. Returns the
/// smallest failing case found (== input if the case no longer fails).
/// `check` overrides the failure predicate — the sweep always uses the
/// real check_e2e_case; tests substitute synthetic predicates to pin the
/// shrink strategy itself.
E2eCase minimize_e2e_case(const E2eCase& c,
                          const std::function<CheckResult(const E2eCase&)>& check = {});

struct E2eSweepOptions {
  u64 seeds = 64;
  u64 first_seed = 1;
  bool minimize = true;  ///< shrink divergent cases before reporting
};

/// One confirmed end-to-end divergence, minimized when requested.
struct E2eDivergence {
  E2eCase c;
  std::string failure;
  u64 seed = 0;
};

struct E2eStats {
  u64 cases_run = 0;
  u64 service_runs = 0;  ///< AlignmentService lifecycles exercised
  u64 chaos_runs = 0;    ///< cases replayed under an armed fault plan
  std::vector<E2eDivergence> divergences;
};

/// Sweep `opt.seeds` end-to-end cases. `on_divergence` (optional) fires
/// after minimization, as each divergence is found.
E2eStats run_e2e_sweep(const E2eSweepOptions& opt,
                       const std::function<void(const E2eDivergence&)>& on_divergence = {});

}  // namespace verify
}  // namespace manymap
