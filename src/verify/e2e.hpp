// End-to-end determinism contracts for the whole mapper pipeline.
//
// Where verify.hpp pins down ONE kernel invocation, an E2eCase pins down a
// whole serving scenario: a synthetic reference, a mutated read set, and
// the configuration knobs of every layer above the kernels — degradation
// rungs (streamed dirs, banded, score-only, device offload), service
// topology (worker counts, shuffled submission orders), the memory ladder,
// live-oracle sampling, and an armed fault plan. check_e2e_case
// (e2e_fuzzer.hpp) replays the case through the real Mapper::map and
// AlignmentService paths and asserts the determinism contract:
//
//   bit-identical   resident == streamed-dirs == banded(zdrop off) == gpu
//                   == every service run, across worker counts and
//                   submission orders (mappings, scores, CIGARs, PAF);
//   score-identical score-only answers equal the direct score-only
//                   baseline bit-for-bit, and stay span-consistent with
//                   the full baseline (same primary locus);
//   advisory        zdrop > 0 banded answers are heuristic — each mapping
//                   must still self-audit (CIGAR rescoring, reference
//                   upper bound) but is not required to match the
//                   baseline path.
//
// Cases serialize to the v2 repro format so a divergence found by the
// sweep is committed as a self-contained regression file, replayable by
// tools/manymap_verify without any seed or RNG version dependence.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "verify/verify.hpp"

namespace manymap {
namespace verify {

/// One armed fault of a case's chaos phase (a fault::FaultSpec with the
/// duration flattened to milliseconds so it round-trips through text).
struct E2eFault {
  std::string site;
  fault::FaultKind kind = fault::FaultKind::kError;
  u32 one_in = 1;
  u32 max_fires = 0;
  u32 delay_ms = 0;

  fault::FaultSpec to_spec() const {
    return {site, kind, one_in, max_fires, std::chrono::milliseconds(delay_ms)};
  }
};

/// Pipeline-level configuration of one end-to-end case. Every knob is
/// explicit (no derivation from the case seed at check time), so repro
/// files stay valid even as make_e2e_case's distributions evolve.
struct E2eConfig {
  // Workload synthesis (simulate/genome.hpp + read_sim.hpp).
  u64 ref_seed = 7;
  u64 ref_len = 50'000;
  u32 ref_contigs = 2;
  u64 read_seed = 11;
  u32 num_reads = 6;
  u32 read_max_len = 2'000;
  // Direct degradation rungs, each replayed through Mapper::map against
  // the resident baseline. 0 skips a rung.
  i32 band = 0;         ///< banded rung half-width
  i32 zdrop = 0;        ///< >0 makes the banded rung advisory (see header)
  u64 dirs_budget = 0;  ///< streamed-dirs rung per-call budget
  bool gpu = false;     ///< device-offload rung + gpu-enabled service run
  // Service determinism runs: one AlignmentService per worker count, the
  // first submitting in read order, the rest in orders shuffled from
  // `shuffle_seed` — responses must be bit-identical across all of them.
  std::vector<u32> workers = {1, 2, 8};
  u64 shuffle_seed = 1;
  // Memory-ladder service run (all 0 = skip): thresholds for
  // ServiceConfig::MemoryConfig so responses span the degrade levels.
  u64 svc_resident_bytes = 0;
  u64 svc_score_only_bytes = 0;
  u64 svc_banded_bytes = 0;
  /// Live-oracle sampling rate for every service run (1 = audit all).
  u64 verify_every = 1;
  // Chaos phase (empty faults = skip): the service run repeated with this
  // plan installed; see check_e2e_case for what survives the contract.
  u64 fault_seed = 0;
  std::vector<E2eFault> faults;
};

/// One end-to-end case: the seed it derived from (0 for hand-written
/// repros), its full configuration, and — when non-empty — an explicit
/// read set overriding `cfg.read_seed` synthesis (the minimizer
/// materializes reads so it can drop and shrink them individually).
struct E2eCase {
  u64 seed = 0;
  E2eConfig cfg;
  std::vector<std::vector<u8>> reads;
};

/// Which format a repro file carries: a v1 single-kernel CaseSpec or a v2
/// end-to-end E2eCase.
enum class ReproKind { kKernel, kE2e };

/// Self-contained v2 text repro. `note` is carried as comment lines.
std::string format_e2e_repro(const E2eCase& c, const std::string& note);

/// Parse a v2 repro produced by format_e2e_repro (also accepts
/// hand-written ones). On failure returns false and sets *err.
bool parse_e2e_repro(const std::string& text, E2eCase* out, std::string* err);

/// Load a repro file of either format, dispatching on the header line:
/// v1 fills *kernel, v2 fills *e2e, *kind says which. Existing v1
/// regression files replay unchanged through this entry point.
bool load_repro_any(const std::string& path, ReproKind* kind, CaseSpec* kernel,
                    E2eCase* e2e, std::string* err);

}  // namespace verify
}  // namespace manymap
