#include "verify/index_fuzzer.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "fault/fault.hpp"
#include "index/index_io.hpp"
#include "io/checksum.hpp"
#include "simulate/genome.hpp"

namespace manymap {
namespace verify {

namespace {

/// Corruption applied to the serialized image for one seed.
enum class Corruption {
  kControl,        ///< untouched — must round-trip bit-identically
  kTruncate,       ///< cut the file at a random byte
  kBitFlip,        ///< flip one random bit anywhere
  kCountInflate,   ///< hostile header count (checksum fixed up) — allocation bomb
  kStaleVersion,   ///< version field rewound to v1
  kBadMagic,       ///< not an MMMI file at all
  kChecksumField,  ///< damage a stored section checksum (checksum fixed up)
  kDoubleFlip,     ///< two independent bit flips
};
constexpr int kNumCorruptions = 8;

const char* to_string(Corruption c) {
  switch (c) {
    case Corruption::kControl: return "control";
    case Corruption::kTruncate: return "truncate";
    case Corruption::kBitFlip: return "bitflip";
    case Corruption::kCountInflate: return "count_inflate";
    case Corruption::kStaleVersion: return "stale_version";
    case Corruption::kBadMagic: return "bad_magic";
    case Corruption::kChecksumField: return "checksum_field";
    case Corruption::kDoubleFlip: return "double_flip";
  }
  return "?";
}

/// Header field offsets the corruptions poke at (kept in sync with
/// IndexHeader by the static_asserts in index_io.hpp).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffCounts = 32;        // n_contigs..n_keys, 4 x u64
constexpr std::size_t kOffSectionSums[3] = {  // checksum u64 of each IndexSectionDesc
    72 + 16, 96 + 16, 120 + 16};
constexpr std::size_t kHeaderHashed = offsetof(IndexHeader, header_checksum);

/// Re-stamp the header checksum after deliberately editing header fields,
/// so the load proceeds past the O(1) checksum gate and the *structural*
/// validation (bounds checks) is what has to reject the file.
void fixup_header_checksum(std::string& image) {
  if (image.size() < sizeof(IndexHeader)) return;
  const u64 sum = xxh64(image.data(), kHeaderHashed);
  std::memcpy(image.data() + kHeaderHashed, &sum, sizeof sum);
}

bool write_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

/// Deterministically corrupt `image` in place; returns false when the
/// corruption is a guaranteed no-op (caller treats the seed as control).
bool apply_corruption(Corruption kind, XorShift& rng, std::string& image) {
  if (image.size() < sizeof(IndexHeader)) return false;
  switch (kind) {
    case Corruption::kControl:
      return false;
    case Corruption::kTruncate:
      image.resize(rng.below(image.size()));
      return true;
    case Corruption::kBitFlip: {
      const std::size_t at = rng.below(image.size());
      image[at] = static_cast<char>(static_cast<unsigned char>(image[at]) ^ (1u << rng.below(8)));
      return true;
    }
    case Corruption::kCountInflate: {
      // One of n_contigs / n_buckets / n_entries / n_keys becomes huge.
      // With the checksum re-stamped, only the count-vs-file-size bounds
      // checks stand between this file and a multi-terabyte reserve().
      const u64 huge = (u64{1} << 40) + rng.next() % (u64{1} << 40);
      std::memcpy(image.data() + kOffCounts + 8 * rng.below(4), &huge, sizeof huge);
      fixup_header_checksum(image);
      return true;
    }
    case Corruption::kStaleVersion: {
      const u32 v1 = 1;
      std::memcpy(image.data() + kOffVersion, &v1, sizeof v1);
      fixup_header_checksum(image);
      return true;
    }
    case Corruption::kBadMagic: {
      const u32 junk = static_cast<u32>(rng.next()) ^ kIndexMagic ^ 0xdeadbeefu;
      std::memcpy(image.data(), &junk, sizeof junk);
      return true;
    }
    case Corruption::kChecksumField: {
      const std::size_t at = kOffSectionSums[rng.below(3)] + rng.below(8);
      image[at] = static_cast<char>(static_cast<unsigned char>(image[at]) ^ (1u << rng.below(8)));
      fixup_header_checksum(image);
      return true;
    }
    case Corruption::kDoubleFlip: {
      for (int i = 0; i < 2; ++i) {
        const std::size_t at = rng.below(image.size());
        image[at] =
            static_cast<char>(static_cast<unsigned char>(image[at]) ^ (1u << rng.below(8)));
      }
      return true;
    }
  }
  return false;
}

struct SeedContext {
  u64 seed = 0;
  Corruption kind = Corruption::kControl;
  SweepStats* stats = nullptr;
  const std::function<void(const Divergence&)>* on_divergence = nullptr;
  ComboStats* combo = nullptr;
  bool diverged = false;
};

void report(SeedContext& ctx, const std::string& what) {
  Divergence d;
  d.seed = ctx.seed;
  d.failure = std::string("corruptidx/") + to_string(ctx.kind) + ": " + what;
  ctx.stats->divergences.push_back(d);
  if (ctx.combo != nullptr && !ctx.diverged) ctx.combo->divergences++;
  ctx.diverged = true;
  if (*ctx.on_divergence) (*ctx.on_divergence)(ctx.stats->divergences.back());
}

/// One loader outcome, normalized across the three load paths.
struct LoadOutcome {
  bool ok = false;
  IndexIoStatus status = IndexIoStatus::kOk;
  std::string message;
  std::string reserialized;  ///< set when ok
};

LoadOutcome load_via(int which, const std::string& path, const IndexLoadOptions& opt) {
  LoadOutcome out;
  switch (which) {
    case 0: {
      IndexLoadResult r = try_load_index_stream(path, opt);
      out.ok = r.ok();
      out.status = r.status;
      out.message = std::move(r.message);
      if (out.ok) out.reserialized = serialize_index(r.index);
      break;
    }
    case 1: {
      IndexLoadResult r = try_load_index_mmap(path, opt);
      out.ok = r.ok();
      out.status = r.status;
      out.message = std::move(r.message);
      if (out.ok) out.reserialized = serialize_index(r.index);
      break;
    }
    default: {
      IndexViewResult r = try_load_index_view(path, opt);
      out.ok = r.ok();
      out.status = r.status;
      out.message = std::move(r.message);
      if (out.ok) out.reserialized = serialize_index(r.view.materialize());
      break;
    }
  }
  return out;
}

const char* loader_name(int which) {
  return which == 0 ? "stream" : which == 1 ? "mmap" : "view";
}

constexpr const char* kIndexFaultSites[] = {"index.io.open", "index.io.short_read",
                                            "index.corrupt"};

void run_one_seed(SeedContext& ctx, const CorruptIdxOptions& opt, const std::string& path) {
  XorShift rng(ctx.seed * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);

  // A small genome + index, fully determined by the seed.
  GenomeParams gp;
  gp.total_length = 8'000 + rng.below(24'000);
  gp.num_contigs = 1 + static_cast<u32>(rng.below(4));
  gp.repeat_families = static_cast<u32>(rng.below(4));
  gp.seed = ctx.seed;
  const Reference ref = generate_genome(gp);
  SketchParams sp;
  sp.k = 8 + static_cast<u32>(rng.below(13));
  sp.w = 3 + static_cast<u32>(rng.below(8));
  const MinimizerIndex index = MinimizerIndex::build(ref, sp);
  const std::string original = serialize_index(index);

  std::string image = original;
  const bool corrupted = apply_corruption(ctx.kind, rng, image);
  if (!write_bytes(path, image)) {
    report(ctx, "cannot write scratch file " + path);
    return;
  }

  // Contract 1: every load path either succeeds bit-identically or fails
  // cleanly, and all three agree on accept/reject.
  IndexLoadOptions lopt;
  LoadOutcome outs[3];
  for (int which = 0; which < 3; ++which) {
    outs[which] = load_via(which, path, lopt);
    ctx.stats->cases_run++;
    const LoadOutcome& o = outs[which];
    if (!o.ok && o.message.empty())
      report(ctx, std::string(loader_name(which)) + " failed without a message (status " +
                      std::string(to_string(o.status)) + ")");
    if (o.ok && o.status != IndexIoStatus::kOk)
      report(ctx, std::string(loader_name(which)) + " ok() with non-kOk status");
    if (o.ok && !corrupted && o.reserialized != original)
      report(ctx, std::string(loader_name(which)) + " round-trip not bit-identical");
    // A corrupted file may legitimately load only when the damage was a
    // no-op on the payload (e.g. two bit flips cancelling); the loaded
    // state must then still match the bytes exactly.
    if (o.ok && corrupted && o.reserialized != image)
      report(ctx, std::string(loader_name(which)) +
                      " accepted a corrupted file without being bit-identical to it");
  }
  if (outs[0].ok != outs[1].ok || outs[1].ok != outs[2].ok)
    report(ctx, "loaders disagree: stream=" + std::string(outs[0].ok ? "ok" : "reject") +
                    " mmap=" + (outs[1].ok ? "ok" : "reject") +
                    " view=" + (outs[2].ok ? "ok" : "reject"));
  if (!corrupted && !outs[0].ok)
    report(ctx, "control file rejected: " + outs[0].message);

  // Contract 2: with checksum verification off, the structural checks
  // alone must still keep loads crash-free (and count inflation must
  // still be rejected before any allocation).
  if (opt.nochecksum_every > 0 && ctx.seed % opt.nochecksum_every == 0) {
    IndexLoadOptions relaxed;
    relaxed.verify_checksums = false;
    for (int which = 0; which < 3; ++which) {
      const LoadOutcome o = load_via(which, path, relaxed);
      ctx.stats->cases_run++;
      if (!o.ok && o.message.empty())
        report(ctx, std::string(loader_name(which)) +
                        " (checksums off) failed without a message");
      if (!corrupted && !o.ok)
        report(ctx, std::string(loader_name(which)) +
                        " (checksums off) rejected the control file: " + o.message);
      if (!corrupted && o.ok && o.reserialized != original)
        report(ctx, std::string(loader_name(which)) +
                        " (checksums off) round-trip not bit-identical");
    }
  }

  // Contract 3: armed fault sites against the PRISTINE file behave like
  // real I/O errors (structured failure, never a crash), and the next
  // unarmed load is bit-identical again.
  if (opt.fault_every > 0 && ctx.seed % opt.fault_every == 0) {
    if (!write_bytes(path, original)) {
      report(ctx, "cannot rewrite pristine scratch file " + path);
      return;
    }
    for (const char* site : kIndexFaultSites) {
      fault::FaultPlan plan(ctx.seed);
      plan.arm({site, fault::FaultKind::kError, 1, 1, {}});
      fault::ScopedPlan guard(&plan);
      for (int which = 0; which < 3; ++which) {
        const LoadOutcome o = load_via(which, path, lopt);
        ctx.stats->cases_run++;
        // One fire per plan: exactly one of the three loads eats the
        // fault; the others must succeed bit-identically.
        if (!o.ok && o.message.empty())
          report(ctx, std::string(loader_name(which)) + " armed(" + site +
                          ") failed without a message");
        if (o.ok && o.reserialized != original)
          report(ctx, std::string(loader_name(which)) + " armed(" + site +
                          ") succeeded but was not bit-identical");
      }
      if (plan.fires() == 0)
        report(ctx, std::string("armed site ") + site + " never fired");
    }
    const LoadOutcome after = load_via(1, path, lopt);
    ctx.stats->cases_run++;
    if (!after.ok || after.reserialized != original)
      report(ctx, "unarmed load after fault replay not bit-identical: " + after.message);
  }
}

}  // namespace

SweepStats run_corruptidx_sweep(const CorruptIdxOptions& opt,
                                const std::function<void(const Divergence&)>& on_divergence) {
  SweepStats stats;
  stats.combos.resize(kNumCorruptions);
  for (int i = 0; i < kNumCorruptions; ++i)
    stats.combos[i].name = std::string("corruptidx/") + to_string(static_cast<Corruption>(i));

  const std::string dir = opt.tmp_dir.empty() ? "/tmp" : opt.tmp_dir;
  const std::string path = dir + "/manymap_corruptidx_" + std::to_string(::getpid()) + ".mmmi";

  for (u64 seed = opt.first_seed; seed < opt.first_seed + opt.seeds; ++seed) {
    SeedContext ctx;
    ctx.seed = seed;
    // The corruption kind cycles deterministically so every kind appears
    // evenly regardless of seed range.
    ctx.kind = static_cast<Corruption>(seed % kNumCorruptions);
    ctx.stats = &stats;
    ctx.on_divergence = &on_divergence;
    ctx.combo = &stats.combos[static_cast<int>(ctx.kind)];
    ctx.combo->cases++;
    run_one_seed(ctx, opt, path);
  }
  std::remove(path.c_str());
  return stats;
}

}  // namespace verify
}  // namespace manymap
