// Corruption fuzzer for the MMMI index persistence layer ("corruptidx"
// family). Each seed deterministically builds a small index, serializes
// it, applies one seed-derived corruption (truncation, bit flips, count
// inflation, stale version, bad magic, checksum-field damage — or none,
// the control), and replays the file through all three load paths
// (stream / mmap / zero-copy view).
//
// The contract under test is the durability contract from DESIGN.md:
// every load either succeeds BIT-IDENTICALLY (re-serializing the loaded
// index reproduces the original byte image exactly) or fails cleanly
// (structured status + actionable message; no crash, no abort, no
// allocation proportional to hostile header counts). The three loaders
// must agree on accept/reject. Periodic replays additionally run with
// checksum verification disabled (structural validation must still hold)
// and with the index.io.* / index.corrupt fault sites armed against the
// pristine file (injected faults must look exactly like real I/O errors,
// and the next unarmed load must still be bit-identical).
#pragma once

#include <functional>
#include <string>

#include "verify/fuzzer.hpp"

namespace manymap {
namespace verify {

struct CorruptIdxOptions {
  u64 seeds = 128;
  u64 first_seed = 1;
  /// Directory for scratch index files (one per in-flight seed, removed
  /// after each). Empty = /tmp.
  std::string tmp_dir;
  /// Every Nth seed also replays the PRISTINE file with each index fault
  /// site armed (index.io.open, index.io.short_read, index.corrupt),
  /// requiring a clean structured failure, then a clean unarmed reload.
  /// 0 disables the fault replays.
  u64 fault_every = 8;
  /// Every Nth seed replays its (possibly corrupted) file with
  /// verify_checksums=false: bounds/structure checks alone must still
  /// prevent crashes and allocation bombs. 0 disables.
  u64 nochecksum_every = 4;
};

/// Run the corruption sweep. Divergences carry the failing seed and a
/// description of the broken contract (the CaseSpec member is unused —
/// there is no kernel case to minimize). `on_divergence` fires as each
/// divergence is found.
SweepStats run_corruptidx_sweep(
    const CorruptIdxOptions& opt,
    const std::function<void(const Divergence&)>& on_divergence = {});

}  // namespace verify
}  // namespace manymap
