// Deterministic, seed-driven fault injection for robustness testing.
//
// A FaultPlan arms named injection *sites* (string identifiers compiled
// into the code via MM_INJECT) with a fault kind, a firing rate, and a
// bound on total fires. Everything a plan does derives from one u64 seed:
// each armed spec owns an independent xorshift64* stream, so a
// single-threaded visit sequence fires identically across runs, and a
// chaos schedule is fully described by (seed, spec list).
//
//   fault::FaultPlan plan(seed);
//   plan.arm({"service.worker.compute", fault::FaultKind::kError, 4});
//   fault::ScopedPlan guard(&plan);        // install for this scope
//   ... run traffic; MM_INJECT sites consult the plan ...
//
// Site call forms:
//   MM_INJECT(site)        throws FaultInjected (kError), sleeps (kSlow),
//                          or stalls (kStall) — for call sites whose
//                          callers handle exceptions.
//   MM_INJECT_FAIL(site)   bool expression: true when a kError fault fires
//                          — for call sites with a native failure path
//                          (e.g. an allocator returning nullopt).
//   MM_INJECT_DELAY(site)  honors kSlow/kStall only, never throws — for
//                          threads that must not unwind (schedulers).
//
// Cost: when the build flag MANYMAP_FAULT_INJECTION is 0 the macros
// compile to nothing. When 1 (the default), an unarmed process pays one
// relaxed atomic load + predicted branch per site visit; sites sit at
// request/allocation granularity, never inside DP loops.
//
// Threading: install/clear while no traffic is running (the plan pointer
// is not reference-counted); with a plan installed, visits from any
// number of threads are safe. Per-site firing is deterministic in the
// site's visit order — single-threaded visit sequences reproduce exactly.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/common.hpp"

#ifndef MANYMAP_FAULT_INJECTION
#define MANYMAP_FAULT_INJECTION 1
#endif

namespace manymap {
namespace fault {

enum class FaultKind {
  kError,  ///< throw FaultInjected (MM_INJECT) / report failure (MM_INJECT_FAIL)
  kSlow,   ///< sleep for `delay`, then continue normally
  kStall,  ///< sleep for `delay` (long; meant to trip watchdogs), cancellable
};

const char* to_string(FaultKind kind);

/// Thrown at a site when a kError fault fires via MM_INJECT.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One armed fault: where, what, how often, how many times.
struct FaultSpec {
  /// Exact site name, or a prefix pattern ending in '*' ("service.*").
  std::string site;
  FaultKind kind = FaultKind::kError;
  /// Fire on average once per `one_in` visits (1 = every visit). The
  /// decision stream is deterministic per armed spec given the plan seed.
  u32 one_in = 1;
  /// Total fires allowed across the plan's lifetime; 0 = unbounded.
  u32 max_fires = 0;
  /// Sleep duration for kSlow / kStall.
  std::chrono::milliseconds delay{0};
};

class FaultPlan {
 public:
  FaultPlan() : FaultPlan(1) {}
  explicit FaultPlan(u64 seed);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  void arm(FaultSpec spec);
  u64 seed() const { return seed_; }

  /// Wakes all in-progress kStall sleeps early and disables further
  /// delays; firing decisions keep advancing (determinism is preserved
  /// for counting, only the sleeping stops). Used to unblock shutdown.
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Decide whether this visit to `site` fires; first armed spec whose
  /// pattern matches consumes the visit. Thread-safe.
  std::optional<FaultSpec> on_visit(const char* site);

  u64 visits() const { return visits_.load(std::memory_order_relaxed); }
  u64 fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  struct Armed {
    FaultSpec spec;
    u64 rng;  ///< xorshift64* state, guarded by mu_
    u64 fired = 0;
  };

  u64 seed_;
  std::vector<Armed> armed_;
  std::atomic<u64> visits_{0}, fires_{0};
  std::atomic<bool> cancelled_{false};
  std::mutex mu_;  ///< guards armed_ rng/fired advancement
};

/// Catalog of every site compiled into the tree (kept in fault.cpp next
/// to nothing — update when adding MM_INJECT calls). Chaos tooling draws
/// schedules from this list; tests assert it stays sorted + unique.
const std::vector<std::string>& known_sites();

/// Install `plan` as the process-global plan consulted by the macros;
/// `plan` must outlive all traffic. nullptr clears.
void install_plan(FaultPlan* plan);
FaultPlan* current_plan();

/// RAII install/clear.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan* plan) { install_plan(plan); }
  ~ScopedPlan() { install_plan(nullptr); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

namespace detail {
extern std::atomic<FaultPlan*> g_plan;
void inject_slow(FaultPlan* plan, const char* site);
bool inject_fail_slow(FaultPlan* plan, const char* site);
void inject_delay_slow(FaultPlan* plan, const char* site);
}  // namespace detail

/// Hook behind MM_INJECT.
inline void inject(const char* site) {
  FaultPlan* p = detail::g_plan.load(std::memory_order_acquire);
  if (p != nullptr) detail::inject_slow(p, site);
}

/// Hook behind MM_INJECT_FAIL.
inline bool inject_fail(const char* site) {
  FaultPlan* p = detail::g_plan.load(std::memory_order_acquire);
  return p != nullptr && detail::inject_fail_slow(p, site);
}

/// Hook behind MM_INJECT_DELAY.
inline void inject_delay(const char* site) {
  FaultPlan* p = detail::g_plan.load(std::memory_order_acquire);
  if (p != nullptr) detail::inject_delay_slow(p, site);
}

}  // namespace fault
}  // namespace manymap

#if MANYMAP_FAULT_INJECTION
#define MM_INJECT(site) ::manymap::fault::inject(site)
#define MM_INJECT_FAIL(site) ::manymap::fault::inject_fail(site)
#define MM_INJECT_DELAY(site) ::manymap::fault::inject_delay(site)
#else
#define MM_INJECT(site) ((void)0)
#define MM_INJECT_FAIL(site) (false)
#define MM_INJECT_DELAY(site) ((void)0)
#endif
