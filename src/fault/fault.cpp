#include "fault/fault.hpp"

#include <algorithm>
#include <thread>

namespace manymap {
namespace fault {
namespace {

// xorshift64* — same generator family the verify fuzzer uses; one
// independent stream per armed spec so adding a spec never perturbs the
// firing pattern of the others.
u64 splitmix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

u64 xorshift_next(u64& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dULL;
}

u64 hash_str(const std::string& s) {
  u64 h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) h = (h ^ static_cast<u8>(c)) * 0x100000001b3ULL;
  return h;
}

bool site_matches(const std::string& pattern, const char* site) {
  if (!pattern.empty() && pattern.back() == '*')
    return std::string_view(site).substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  return pattern == site;
}

// Sleep in short slices so FaultPlan::cancel() unblocks stalled threads
// promptly instead of holding shutdown hostage for the full delay.
void cancellable_sleep(const FaultPlan& plan, std::chrono::milliseconds delay) {
  const auto until = std::chrono::steady_clock::now() + delay;
  while (!plan.cancelled() && std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kStall: return "stall";
  }
  return "?";
}

FaultPlan::FaultPlan(u64 seed) : seed_(seed ? seed : 0x6d616e79ULL) {}

void FaultPlan::arm(FaultSpec spec) {
  MM_REQUIRE(spec.one_in >= 1, "FaultSpec::one_in must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  Armed a;
  a.rng = splitmix(seed_ ^ hash_str(spec.site) ^
                   (static_cast<u64>(spec.kind) << 56));
  if (a.rng == 0) a.rng = 0x9e3779b9ULL;
  a.spec = std::move(spec);
  armed_.push_back(std::move(a));
}

std::optional<FaultSpec> FaultPlan::on_visit(const char* site) {
  visits_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (Armed& a : armed_) {
    if (!site_matches(a.spec.site, site)) continue;
    if (a.spec.max_fires != 0 && a.fired >= a.spec.max_fires) return std::nullopt;
    const bool fire = xorshift_next(a.rng) % a.spec.one_in == 0;
    if (!fire) return std::nullopt;
    ++a.fired;
    fires_.fetch_add(1, std::memory_order_relaxed);
    return a.spec;
  }
  return std::nullopt;
}

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> kSites = {
      "align.dirs.spill",        // streamed dirs block handoff to a spill sink
      "align.dirs.spill_io",     // temp-file spill read/write
      "align.dp.alloc",          // DP workspace allocation (diff + twopiece)
      "gpu.launch",              // device kernel launch (offload subsystem)
      "gpu.stage_oom",           // pinned-style host staging allocation
      "index.corrupt",           // forced checksum mismatch after validation
      "index.io.open",           // structured loader open (native error path)
      "index.io.short_read",     // structured loader header read (native error path)
      "index.load.mmap",         // mmap-backed index load
      "index.load.stream",       // streamed index load
      "index.save",              // index serialization
      "index.save.write",        // crash window between tmp write and publish
      "io.file.read",            // whole-file read
      "io.file.write",           // whole-file write
      "io.mmap.open",            // MappedFile::open (native bool failure)
      "service.queue.delay",     // scheduler -> shard queue handoff (delay only)
      "service.worker.compute",  // worker per-request compute
      "simt.pool.alloc",         // SIMT memory pool (native nullopt failure)
      "simt.stream.launch",      // SIMT stream launch (native fallback path)
  };
  return kSites;
}

namespace detail {

std::atomic<FaultPlan*> g_plan{nullptr};

void inject_slow(FaultPlan* plan, const char* site) {
  auto fired = plan->on_visit(site);
  if (!fired) return;
  switch (fired->kind) {
    case FaultKind::kError:
      throw FaultInjected(site);
    case FaultKind::kSlow:
    case FaultKind::kStall:
      cancellable_sleep(*plan, fired->delay);
      return;
  }
}

bool inject_fail_slow(FaultPlan* plan, const char* site) {
  auto fired = plan->on_visit(site);
  if (!fired) return false;
  switch (fired->kind) {
    case FaultKind::kError:
      return true;
    case FaultKind::kSlow:
    case FaultKind::kStall:
      cancellable_sleep(*plan, fired->delay);
      return false;
  }
  return false;
}

void inject_delay_slow(FaultPlan* plan, const char* site) {
  auto fired = plan->on_visit(site);
  if (fired && fired->kind != FaultKind::kError)
    cancellable_sleep(*plan, fired->delay);
}

}  // namespace detail

void install_plan(FaultPlan* plan) {
  detail::g_plan.store(plan, std::memory_order_release);
}

FaultPlan* current_plan() {
  return detail::g_plan.load(std::memory_order_acquire);
}

}  // namespace fault
}  // namespace manymap
