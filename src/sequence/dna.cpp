#include "sequence/dna.hpp"

namespace manymap {

namespace {
// 'A'=65 'C'=67 'G'=71 'T'=84 'U'=85, lowercase +32. Everything else -> N(4).
constexpr u8 N = kBaseN;
}  // namespace

const u8 kAsciiToCode[256] = {
    // 0..63
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    // 64..127: @ A B C D E F G H I J K L M N O
    N, 0, N, 1, N, N, N, 2, N, N, N, N, N, N, N, N,
    // P Q R S T U V W X Y Z [ \ ] ^ _
    N, N, N, N, 3, 3, N, N, N, N, N, N, N, N, N, N,
    // ` a b c d e f g h i j k l m n o
    N, 0, N, 1, N, N, N, 2, N, N, N, N, N, N, N, N,
    // p q r s t u v w x y z { | } ~ DEL
    N, N, N, N, 3, 3, N, N, N, N, N, N, N, N, N, N,
    // 128..255
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
    N, N, N, N, N, N, N, N, N, N, N, N, N, N, N, N,
};

const char kCodeToAscii[5] = {'A', 'C', 'G', 'T', 'N'};

std::vector<u8> encode_dna(std::string_view ascii) {
  std::vector<u8> out(ascii.size());
  for (std::size_t i = 0; i < ascii.size(); ++i) out[i] = base_code(ascii[i]);
  return out;
}

std::string decode_dna(const std::vector<u8>& codes) {
  std::string out(codes.size(), 'N');
  for (std::size_t i = 0; i < codes.size(); ++i) out[i] = base_char(codes[i]);
  return out;
}

std::vector<u8> reverse_complement(const std::vector<u8>& codes) {
  std::vector<u8> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i)
    out[codes.size() - 1 - i] = complement_code(codes[i]);
  return out;
}

std::string reverse_complement_ascii(std::string_view ascii) {
  return decode_dna(reverse_complement(encode_dna(ascii)));
}

double gc_content(const std::vector<u8>& codes) {
  std::size_t gc = 0, acgt = 0;
  for (u8 c : codes) {
    if (c < 4) {
      ++acgt;
      if (c == 1 || c == 2) ++gc;
    }
  }
  return acgt == 0 ? 0.0 : static_cast<double>(gc) / static_cast<double>(acgt);
}

}  // namespace manymap
