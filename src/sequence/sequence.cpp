#include "sequence/sequence.hpp"

#include <algorithm>

namespace manymap {

Sequence Sequence::from_ascii(std::string name, std::string_view ascii) {
  Sequence s;
  s.name = std::move(name);
  s.codes = encode_dna(ascii);
  return s;
}

void Reference::add(Sequence contig) {
  total_length_ += contig.size();
  contigs_.push_back(std::move(contig));
}

i64 Reference::find(std::string_view name) const {
  for (std::size_t i = 0; i < contigs_.size(); ++i)
    if (contigs_[i].name == name) return static_cast<i64>(i);
  return -1;
}

std::vector<u8> Reference::extract(std::size_t cid, u64 start, u64 len) const {
  MM_REQUIRE(cid < contigs_.size(), "contig id out of range");
  const auto& c = contigs_[cid].codes;
  if (start >= c.size()) return {};
  const u64 end = std::min<u64>(c.size(), start + len);
  return std::vector<u8>(c.begin() + static_cast<std::ptrdiff_t>(start),
                         c.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace manymap
