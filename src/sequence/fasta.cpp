#include "sequence/fasta.hpp"

#include <fstream>
#include <sstream>

namespace manymap {

namespace {

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string first_token(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
  return std::string(s.substr(0, i));
}

}  // namespace

std::vector<Sequence> parse_fasta(std::string_view text) {
  std::vector<Sequence> out;
  std::string current_ascii;
  std::string current_name;
  bool in_record = false;
  auto flush = [&] {
    if (in_record) out.push_back(Sequence::from_ascii(current_name, current_ascii));
    current_ascii.clear();
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        strip_cr(text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) - pos));
    if (!line.empty()) {
      if (line[0] == '>') {
        flush();
        in_record = true;
        current_name = first_token(line.substr(1));
      } else if (in_record) {
        current_ascii.append(line);
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  flush();
  return out;
}

std::vector<Sequence> parse_fastq(std::string_view text) {
  std::vector<Sequence> out;
  std::size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos > text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    line = strip_cr(text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) - pos));
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    return true;
  };
  std::string_view header, seq, plus, qual;
  while (next_line(header)) {
    if (header.empty()) continue;
    MM_REQUIRE(header[0] == '@', "FASTQ record must start with '@'");
    const bool ok = next_line(seq) && next_line(plus) && next_line(qual);
    MM_REQUIRE(ok, "truncated FASTQ record");
    MM_REQUIRE(!plus.empty() && plus[0] == '+', "FASTQ separator line must start with '+'");
    Sequence s = Sequence::from_ascii(first_token(header.substr(1)), seq);
    s.qual = std::string(qual);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Sequence> parse_sequences(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == '\n' || text[i] == '\r' || text[i] == ' ')) ++i;
  if (i >= text.size()) return {};
  if (text[i] == '@') return parse_fastq(text.substr(i));
  return parse_fasta(text.substr(i));
}

std::vector<Sequence> read_sequence_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MM_REQUIRE(in.good(), "cannot open sequence file");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_sequences(ss.str());
}

std::string to_fasta(const std::vector<Sequence>& seqs, std::size_t width) {
  std::string out;
  for (const auto& s : seqs) {
    out.push_back('>');
    out.append(s.name);
    out.push_back('\n');
    const std::string ascii = s.to_ascii();
    if (width == 0) {
      out.append(ascii);
      out.push_back('\n');
    } else {
      for (std::size_t i = 0; i < ascii.size(); i += width) {
        out.append(ascii.substr(i, width));
        out.push_back('\n');
      }
      if (ascii.empty()) out.push_back('\n');
    }
  }
  return out;
}

std::string to_fastq(const std::vector<Sequence>& seqs) {
  std::string out;
  for (const auto& s : seqs) {
    const std::string ascii = s.to_ascii();
    out.push_back('@');
    out.append(s.name);
    out.push_back('\n');
    out.append(ascii);
    out.append("\n+\n");
    out.append(s.qual.size() == ascii.size() ? s.qual : std::string(ascii.size(), 'I'));
    out.push_back('\n');
  }
  return out;
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t width) {
  std::ofstream out(path, std::ios::binary);
  MM_REQUIRE(out.good(), "cannot open FASTA output file");
  out << to_fasta(seqs, width);
}

void write_fastq_file(const std::string& path, const std::vector<Sequence>& seqs) {
  std::ofstream out(path, std::ios::binary);
  MM_REQUIRE(out.good(), "cannot open FASTQ output file");
  out << to_fastq(seqs);
}

}  // namespace manymap
