// DNA alphabet handling: 2-bit base codes (A=0, C=1, G=2, T=3, N=4),
// ASCII conversion tables, complement/reverse-complement.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/common.hpp"

namespace manymap {

inline constexpr u8 kBaseN = 4;  ///< Code for ambiguous base.

/// ASCII -> code table (case-insensitive; everything non-ACGT maps to N).
extern const u8 kAsciiToCode[256];
/// code -> ASCII.
extern const char kCodeToAscii[5];

inline u8 base_code(char c) { return kAsciiToCode[static_cast<u8>(c)]; }
inline char base_char(u8 code) { return kCodeToAscii[code <= kBaseN ? code : kBaseN]; }

/// Complement of a base code; N stays N.
inline u8 complement_code(u8 code) { return code < 4 ? static_cast<u8>(3 - code) : kBaseN; }

/// Encode an ASCII sequence into base codes.
std::vector<u8> encode_dna(std::string_view ascii);
/// Decode base codes back to ASCII.
std::string decode_dna(const std::vector<u8>& codes);

/// Reverse complement of an encoded sequence.
std::vector<u8> reverse_complement(const std::vector<u8>& codes);
/// Reverse complement of an ASCII sequence.
std::string reverse_complement_ascii(std::string_view ascii);

/// Fraction of G/C among non-N bases (0 if all N or empty).
double gc_content(const std::vector<u8>& codes);

}  // namespace manymap
