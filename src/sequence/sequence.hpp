// Named biological sequences and reference genome containers.
#pragma once

#include <string>
#include <vector>

#include "sequence/dna.hpp"

namespace manymap {

/// A named DNA sequence stored as base codes (A=0..T=3, N=4).
struct Sequence {
  std::string name;
  std::vector<u8> codes;
  std::string qual;  ///< optional FASTQ quality string (empty if none)

  std::size_t size() const { return codes.size(); }
  bool empty() const { return codes.empty(); }
  std::string to_ascii() const { return decode_dna(codes); }

  static Sequence from_ascii(std::string name, std::string_view ascii);
};

/// A multi-contig reference. Contigs are kept separate (like minimap2's
/// mi->seq) and addressed by (contig id, offset).
class Reference {
 public:
  Reference() = default;

  void add(Sequence contig);

  std::size_t num_contigs() const { return contigs_.size(); }
  const Sequence& contig(std::size_t i) const { return contigs_[i]; }
  const std::vector<Sequence>& contigs() const { return contigs_; }

  /// Sum of contig lengths.
  u64 total_length() const { return total_length_; }

  /// Index of a contig by name, or -1.
  i64 find(std::string_view name) const;

  /// Extract a subsequence [start, start+len) of contig `cid`, clamped to
  /// contig bounds.
  std::vector<u8> extract(std::size_t cid, u64 start, u64 len) const;

 private:
  std::vector<Sequence> contigs_;
  u64 total_length_ = 0;
};

}  // namespace manymap
