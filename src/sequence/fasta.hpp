// Minimal FASTA/FASTQ reading and writing. The readers accept both
// in-memory strings and files; the query-loading experiments (Table 2 /
// §4.4.2) also go through io/MappedFile.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sequence/sequence.hpp"

namespace manymap {

/// Parse all records from FASTA text. Multi-line sequences supported.
std::vector<Sequence> parse_fasta(std::string_view text);
/// Parse all records from FASTQ text (4-line records).
std::vector<Sequence> parse_fastq(std::string_view text);

/// Auto-detect FASTA vs FASTQ by leading character ('>' vs '@').
std::vector<Sequence> parse_sequences(std::string_view text);

/// Read a whole file and parse; MM_REQUIREs the file exists.
std::vector<Sequence> read_sequence_file(const std::string& path);

/// Serialize to FASTA with the given line width (0 = single line).
std::string to_fasta(const std::vector<Sequence>& seqs, std::size_t width = 60);
/// Serialize to FASTQ ('I' quality if record has none).
std::string to_fastq(const std::vector<Sequence>& seqs);

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t width = 60);
void write_fastq_file(const std::string& path, const std::vector<Sequence>& seqs);

}  // namespace manymap
