// SIMT block interpreter: kernels are written as data-parallel operations
// over the lanes of a thread block. The interpreter *executes* the lane
// lambdas (so results are bit-exact and testable against the CPU kernels)
// while accounting SM cost the way lock-step hardware would:
//   - an op over k active lanes costs ceil(k / warp_size) warp-instructions,
//   - a divergent branch executes BOTH paths serially (each masked),
//   - __syncthreads has a fixed barrier cost,
//   - shared vs global memory accesses differ in per-warp cost.
#pragma once

#include <functional>

#include "simt/device.hpp"

namespace manymap {
namespace simt {

struct BlockCostModel {
  u32 alu_cycles = 1;       ///< per warp-instruction
  u32 shared_cycles = 2;    ///< per warp memory op hitting shared memory
  u32 global_cycles = 24;   ///< per warp memory op hitting global memory
  u32 sync_cycles = 24;     ///< barrier latency
  u32 branch_cycles = 2;    ///< divergence bookkeeping per divergent branch
};

class Block {
 public:
  Block(u32 threads, const DeviceSpec& spec, BlockCostModel model = {})
      : threads_(threads), warp_(spec.warp_size), model_(model) {}

  u32 threads() const { return threads_; }

  /// One instruction executed by lanes [0, active).
  void op(u32 active, const std::function<void(u32)>& fn) {
    for (u32 lane = 0; lane < active; ++lane) fn(lane);
    account_alu(active);
  }

  /// Same as op, but also accounts `mem_ops` memory accesses per warp to
  /// shared or global memory.
  void mem_op(u32 active, bool shared, u32 mem_ops, const std::function<void(u32)>& fn) {
    for (u32 lane = 0; lane < active; ++lane) fn(lane);
    account_alu(active);
    const u64 warps = warps_for(active);
    cost_.cycles += warps * mem_ops * (shared ? model_.shared_cycles : model_.global_cycles);
  }

  /// Divergent branch: lanes satisfying `cond` run `then_fn`, the rest run
  /// `else_fn`; when both sides are non-empty the paths serialize.
  void divergent(u32 active, const std::function<bool(u32)>& cond,
                 const std::function<void(u32)>& then_fn,
                 const std::function<void(u32)>& else_fn);

  /// __syncthreads().
  void sync() {
    ++cost_.syncs;
    cost_.cycles += model_.sync_cycles;
  }

  /// Record the block's memory footprint.
  void set_footprint(u64 shared_bytes, u64 global_bytes) {
    cost_.shared_bytes = shared_bytes;
    cost_.global_bytes = global_bytes;
  }

  const KernelCost& cost() const { return cost_; }

 private:
  u64 warps_for(u32 active) const { return (active + warp_ - 1) / warp_; }
  void account_alu(u32 active) {
    const u64 warps = warps_for(active);
    cost_.warp_instructions += warps;
    cost_.cycles += warps * model_.alu_cycles;
  }

  u32 threads_;
  u32 warp_;
  BlockCostModel model_;
  KernelCost cost_;
};

}  // namespace simt
}  // namespace manymap
