#include "simt/device.hpp"

#include <algorithm>

namespace manymap {
namespace simt {

DeviceSpec DeviceSpec::v100() { return DeviceSpec{}; }

Device::RunReport Device::run(const std::vector<KernelCost>& kernels, u32 num_streams) const {
  RunReport report;
  if (kernels.empty() || num_streams == 0) return report;

  // Memory-capacity cap: the largest kernel footprint determines how many
  // can be resident at once (the §4.5.2 fallback scenario).
  u64 max_bytes = 1;
  for (const auto& k : kernels) max_bytes = std::max(max_bytes, std::max<u64>(k.global_bytes, 1));
  const u32 mem_cap =
      static_cast<u32>(std::max<u64>(1, spec_.global_mem_bytes / max_bytes));

  const u32 slots = std::min({num_streams, spec_.max_resident_grids, mem_cap});
  report.achieved_concurrency = std::min<u32>(slots, static_cast<u32>(kernels.size()));

  // Fluid event simulation: per-stream FIFO queues; the first `slots`
  // streams with pending work hold residency; resident kernels progress at
  // rate min(1, sm_count / n_resident) each.
  struct Stream {
    std::vector<u64> pending;  // kernel cycle costs, front = next
    std::size_t next = 0;
    double remaining = 0.0;    // cycles left of the running kernel
    bool running = false;
  };
  std::vector<Stream> streams(num_streams);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    streams[i % num_streams].pending.push_back(kernels[i].cycles);
    report.total_cycles += kernels[i].cycles;
  }
  const double launch_cycles = spec_.kernel_launch_us * 1e-6 * spec_.clock_ghz * 1e9;

  double now_cycles = 0.0;
  for (;;) {
    // Admit kernels to residency.
    u32 resident = 0;
    for (auto& s : streams) {
      if (resident >= slots) break;
      if (!s.running && s.next < s.pending.size()) {
        s.remaining = static_cast<double>(s.pending[s.next]) + launch_cycles;
        s.running = true;
      }
      if (s.running) ++resident;
    }
    if (resident == 0) break;
    const double rate =
        resident <= spec_.sm_count ? 1.0
                                   : static_cast<double>(spec_.sm_count) / resident;
    // Advance to the next completion.
    double min_time = 0.0;
    bool first = true;
    u32 counted = 0;
    for (auto& s : streams) {
      if (!s.running) continue;
      if (++counted > slots) break;
      const double t = s.remaining / rate;
      if (first || t < min_time) {
        min_time = t;
        first = false;
      }
    }
    now_cycles += min_time;
    counted = 0;
    for (auto& s : streams) {
      if (!s.running) continue;
      if (++counted > slots) break;
      s.remaining -= min_time * rate;
      if (s.remaining <= 1e-9) {
        s.running = false;
        ++s.next;
      }
    }
  }
  report.seconds = now_cycles / (spec_.clock_ghz * 1e9);
  return report;
}

}  // namespace simt
}  // namespace manymap
