#include "simt/block.hpp"

#include <vector>

namespace manymap {
namespace simt {

void Block::divergent(u32 active, const std::function<bool(u32)>& cond,
                      const std::function<void(u32)>& then_fn,
                      const std::function<void(u32)>& else_fn) {
  std::vector<u32> then_lanes, else_lanes;
  then_lanes.reserve(active);
  for (u32 lane = 0; lane < active; ++lane)
    (cond(lane) ? then_lanes : else_lanes).push_back(lane);

  ++cost_.divergent_branches;
  cost_.cycles += model_.branch_cycles;
  // Lock-step semantics: each non-empty side executes over the WHOLE warp
  // set (inactive lanes masked but still occupying issue slots).
  if (!then_lanes.empty()) {
    for (const u32 lane : then_lanes) then_fn(lane);
    account_alu(active);
  }
  if (!else_lanes.empty()) {
    for (const u32 lane : else_lanes) else_fn(lane);
    account_alu(active);
  }
}

}  // namespace simt
}  // namespace manymap
