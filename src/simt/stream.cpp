#include "simt/stream.hpp"

#include "align/diff_kernels.hpp"
#include "fault/fault.hpp"

namespace manymap {
namespace simt {

BatchReport run_alignment_batch(const Device& device, const std::vector<SequencePair>& pairs,
                                const ScoreParams& params, const BatchConfig& config) {
  BatchReport report;
  report.results.resize(pairs.size());

  MemoryPool pool(device.spec().global_mem_bytes, config.num_streams);
  std::vector<KernelCost> gpu_costs;
  gpu_costs.reserve(pairs.size());

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& p = pairs[i];
    DiffArgs a;
    a.target = p.target.data();
    a.tlen = static_cast<i32>(p.target.size());
    a.query = p.query.data();
    a.qlen = static_cast<i32>(p.query.size());
    a.params = params;
    a.mode = config.mode;
    a.with_cigar = config.with_cigar;

    const u32 stream = static_cast<u32>(i % config.num_streams);
    const u64 need = gpu_kernel_global_bytes(a.tlen, a.qlen, a.with_cigar);
    pool.reset(stream);  // each stream recycles its partition per kernel
    if (!pool.allocate(stream, need).has_value()) {
      // Pool partition too small: fall back to the CPU kernel (§4.5.2).
      report.results[i] = get_diff_kernel(config.layout, Isa::kScalar)(a);
      ++report.fallbacks_to_cpu;
      report.total_cells += report.results[i].cells;
      continue;
    }
    if (MM_INJECT_FAIL("simt.stream.launch")) {
      // Stream launch error: retry the pair on the CPU kernel so the batch
      // still returns a result for every pair.
      report.results[i] = get_diff_kernel(config.layout, Isa::kScalar)(a);
      ++report.stream_errors;
      report.total_cells += report.results[i].cells;
      continue;
    }
    auto gpu = gpu_align(a, config.layout, device.spec(), config.threads_per_block);
    report.results[i] = std::move(gpu.result);
    report.total_cells += report.results[i].cells;
    gpu_costs.push_back(gpu.cost);
    ++report.kernels_on_gpu;
  }

  const auto run = device.run(gpu_costs, config.num_streams);
  report.device_seconds = run.seconds;
  report.achieved_concurrency = run.achieved_concurrency;
  return report;
}

}  // namespace simt
}  // namespace manymap
