// Per-stream device memory pool (§4.5.2): the host feeds small batches of
// sequence pairs, so per-kernel cudaMalloc would dominate. Instead each
// CUDA stream owns a fixed partition of a preallocated pool and bump-
// allocates within it, resetting between kernels.
#pragma once

#include <optional>
#include <vector>

#include "base/common.hpp"

namespace manymap {
namespace simt {

class MemoryPool {
 public:
  MemoryPool(u64 total_bytes, u32 num_streams);

  u32 num_streams() const { return static_cast<u32>(offsets_.size()); }
  u64 per_stream_capacity() const { return capacity_; }

  /// Bump-allocate `bytes` (16-byte aligned) in `stream`'s partition.
  /// Returns the pool offset, or nullopt if the partition is exhausted
  /// (the caller then falls back to CPU alignment, §4.5.2).
  std::optional<u64> allocate(u32 stream, u64 bytes);

  /// Release everything allocated in the stream's partition.
  void reset(u32 stream);

  u64 bytes_in_use(u32 stream) const;
  u64 total_allocations() const { return total_allocations_; }
  u64 failed_allocations() const { return failed_allocations_; }

 private:
  u64 capacity_ = 0;
  std::vector<u64> offsets_;  ///< bump pointer per stream (relative)
  u64 total_allocations_ = 0;
  u64 failed_allocations_ = 0;
};

}  // namespace simt
}  // namespace manymap
