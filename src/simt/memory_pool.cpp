#include "simt/memory_pool.hpp"

#include "fault/fault.hpp"

namespace manymap {
namespace simt {

MemoryPool::MemoryPool(u64 total_bytes, u32 num_streams) {
  MM_REQUIRE(num_streams > 0, "pool needs at least one stream");
  capacity_ = total_bytes / num_streams;
  offsets_.assign(num_streams, 0);
}

std::optional<u64> MemoryPool::allocate(u32 stream, u64 bytes) {
  MM_REQUIRE(stream < offsets_.size(), "stream id out of range");
  if (MM_INJECT_FAIL("simt.pool.alloc")) {
    ++failed_allocations_;
    return std::nullopt;  // callers CPU-fallback, as for real exhaustion
  }
  const u64 aligned = round_up(bytes, 16);
  if (offsets_[stream] + aligned > capacity_) {
    ++failed_allocations_;
    return std::nullopt;
  }
  const u64 offset = static_cast<u64>(stream) * capacity_ + offsets_[stream];
  offsets_[stream] += aligned;
  ++total_allocations_;
  return offset;
}

void MemoryPool::reset(u32 stream) {
  MM_REQUIRE(stream < offsets_.size(), "stream id out of range");
  offsets_[stream] = 0;
}

u64 MemoryPool::bytes_in_use(u32 stream) const {
  MM_REQUIRE(stream < offsets_.size(), "stream id out of range");
  return offsets_[stream];
}

}  // namespace simt
}  // namespace manymap
