// Discrete-event GPU device model (substitute for the paper's Tesla V100;
// see DESIGN.md). Captures the mechanisms the paper's GPU results rest on:
//   - concurrent kernel execution across CUDA streams, capped by the
//     device's maximum resident grids (128 on compute capability >= 7.0),
//   - SM time-sharing once resident kernels exceed the SM count,
//   - global-memory capacity limiting concurrency for quadratic-memory
//     (full-path) alignments (§4.5.2's "only 8 kernels can run").
#pragma once

#include <vector>

#include "base/common.hpp"

namespace manymap {
namespace simt {

struct DeviceSpec {
  u32 sm_count = 80;
  u32 max_resident_grids = 128;
  u64 shared_mem_per_block = 48 * 1024;  ///< default (non-opt-in) CUDA limit
  u64 global_mem_bytes = 16ULL << 30;
  double clock_ghz = 1.38;
  u32 warp_size = 32;
  u32 max_block_threads = 512;
  double kernel_launch_us = 4.0;  ///< per-kernel launch/teardown overhead

  static DeviceSpec v100();
};

/// Cost of one kernel execution, produced by the Block interpreter.
struct KernelCost {
  u64 cycles = 0;              ///< SM cycles for one block
  u64 warp_instructions = 0;
  u64 syncs = 0;
  u64 divergent_branches = 0;
  u64 shared_bytes = 0;        ///< shared-memory footprint
  u64 global_bytes = 0;        ///< global-memory footprint
};

class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(spec) {}
  const DeviceSpec& spec() const { return spec_; }

  struct RunReport {
    double seconds = 0.0;
    u32 achieved_concurrency = 0;  ///< resident kernels at steady state
    u64 total_cycles = 0;
  };

  /// Execute `kernels` distributed round-robin over `num_streams` streams.
  /// Each stream runs its kernels in order; across streams, kernels run
  /// concurrently subject to the resident-grid cap, SM time-sharing, and
  /// global-memory capacity.
  RunReport run(const std::vector<KernelCost>& kernels, u32 num_streams) const;

 private:
  DeviceSpec spec_;
};

}  // namespace simt
}  // namespace manymap
