#include "simt/kernels.hpp"

#include <algorithm>

#include "align/diff_common.hpp"

namespace manymap {
namespace simt {

namespace {

using detail::diag_end;
using detail::diag_start;

/// Per-cell DP update shared by both kernel forms (identical math to the
/// CPU kernels, int8 difference arrays).
struct CellUpdate {
  i8 u, v, x, y;
  u8 dir;
};

inline CellUpdate update_cell(i32 sc, i8 vt, i8 xt, i8 ut, i8 yt, i32 q, i32 qe) {
  const i32 aa = xt + vt;
  const i32 bb = yt + ut;
  i32 z = sc;
  u8 d = detail::kDirDiag;
  if (aa > z) {
    z = aa;
    d = detail::kDirDel;
  }
  if (bb > z) {
    z = bb;
    d = detail::kDirIns;
  }
  CellUpdate c;
  c.u = detail::sat_i8(z - vt);
  c.v = detail::sat_i8(z - ut);
  i32 xa = aa - z + q;
  if (xa > 0) d |= detail::kExtDel; else xa = 0;
  c.x = detail::sat_i8(xa - qe);
  i32 yb = bb - z + q;
  if (yb > 0) d |= detail::kExtIns; else yb = 0;
  c.y = detail::sat_i8(yb - qe);
  c.dir = d;
  return c;
}

}  // namespace

u64 gpu_kernel_global_bytes(i32 tlen, i32 qlen, bool with_cigar) {
  const u64 arrays = 4ULL * (static_cast<u64>(std::max(tlen, qlen)) + 1);
  const u64 seqs = static_cast<u64>(tlen) + static_cast<u64>(qlen);
  const u64 dirs = with_cigar ? static_cast<u64>(tlen) * static_cast<u64>(qlen) : 0;
  return arrays + seqs + dirs + 4096;  // +control structures
}

GpuAlignResult gpu_align(const DiffArgs& a, Layout layout, const DeviceSpec& spec,
                         u32 threads) {
  GpuAlignResult out;
  if (detail::handle_degenerate(a, out.result)) return out;
  MM_REQUIRE(threads > 0 && threads <= spec.max_block_threads, "bad thread count");
  MM_REQUIRE(a.params.fits_int8(), "scores too large for int8 difference kernels");

  const i32 tlen = a.tlen, qlen = a.qlen;
  const i32 q = a.params.gap_open, e = a.params.gap_ext;
  const i32 qe = q + e;
  const i8 init_first = static_cast<i8>(-qe);
  const i8 init_rest = static_cast<i8>(-e);
  const ScoreMatrix sm(a.params);
  const bool manymap_layout = layout == Layout::kManymap;

  // Host staging buffers come from the caller's arena when provided (the
  // device-side memory_pool already amortizes its own allocations).
  detail::KernelArena local;
  detail::KernelArena& arena = a.arena != nullptr ? *a.arena : local;
  const detail::DiffWorkspace ws = arena.prepare_diff(a, manymap_layout);
  i8* U = ws.U;
  i8* Y = ws.Y;
  i8* V = ws.V;
  i8* X = ws.X;
  const u8* T = ws.tp;
  const u8* Qr = ws.qr;

  // Memory placement: DP arrays + sequence tiles in shared memory if they
  // fit, else global (§4.5.2).
  const u64 array_bytes = 4ULL * (static_cast<u64>(std::max(tlen, qlen)) + 1) +
                          static_cast<u64>(tlen) + 2ULL * static_cast<u64>(qlen);
  const bool shared = array_bytes <= spec.shared_mem_per_block;
  Block block(threads, spec);
  block.set_footprint(shared ? array_bytes : 0, gpu_kernel_global_bytes(tlen, qlen, a.with_cigar));
  out.used_shared = shared;
  // Direction bytes always live in global memory (quadratic size).
  const bool dirs_shared = false;

  detail::BorderTracker track(tlen, qlen, a.params);
  // Banded runs (a.band > 0) walk the BandTracker's live lane interval
  // instead of the full diagonal — only in-band lanes are staged and
  // computed on the device, exactly like the CPU kernels' banded variants.
  const bool banded = a.band > 0;
  detail::BandTracker btrack(tlen, qlen, a.band, a.zdrop, a.mode, a.params.match,
                             -static_cast<i64>(qe));
  // Per-lane registers for the read phase.
  std::vector<i8> vt_reg(threads), xt_reg(threads), ut_reg(threads), yt_reg(threads);

  for (i32 r = 0; r < tlen + qlen - 1; ++r) {
    const i32 st = diag_start(r, qlen);
    const i32 en = diag_end(r, tlen);
    const i32 shift = qlen - r;
    const i32 qoff = qlen - 1 - r;
    i32 lo = st, hi = en, row0 = st;
    if (banded) {
      if (!btrack.begin_diagonal(r)) break;
      lo = btrack.lo;
      hi = btrack.hi;
      row0 = btrack.blo;
    }

    // Boundary injection (host-side in the real kernel's prologue).
    i8 tmp_v = 0, tmp_x = 0;  // the Fig. 4a carry register
    if (manymap_layout) {
      if (banded) {
        if (lo == 0) {
          V[shift] = (r == 0) ? init_first : init_rest;
          X[shift] = init_first;
        } else if (!btrack.lo_adv) {  // wall: lane lo-1 left the band
          V[lo + shift] = init_first;
          X[lo + shift] = init_first;
        }  // else: slot lo+shift already holds lane lo-1's genuine values
      } else if (st == 0) {
        V[shift] = (r == 0) ? init_first : init_rest;
        X[shift] = init_first;
      }
    } else {
      if (banded) {
        if (lo > 0 && btrack.lo_adv) {
          tmp_v = V[lo - 1];  // lane lo-1 was live on the prev diagonal
          tmp_x = X[lo - 1];
        } else {
          // lo == 0: matrix boundary; lo > 0 stalled: wall injection.
          tmp_v = (r == 0 || lo > 0) ? init_first : init_rest;
          tmp_x = init_first;
        }
      } else if (st == 0) {
        tmp_v = (r == 0) ? init_first : init_rest;
        tmp_x = init_first;
      } else {
        tmp_v = V[st - 1];
        tmp_x = X[st - 1];
      }
    }
    if (banded) {
      if (btrack.hi_adv) {  // lane hi is new: boundary or wall injection
        U[hi] = (hi == r && r != 0) ? init_rest : init_first;
        Y[hi] = init_first;
      }
    } else if (en == r) {
      U[en] = (r == 0) ? init_first : init_rest;
      Y[en] = init_first;
    }
    u8* dir_row =
        a.with_cigar ? ws.dirs + ws.diag_off[static_cast<std::size_t>(r)] : nullptr;

    for (i32 base = lo; base <= hi; base += static_cast<i32>(threads)) {
      const u32 active = static_cast<u32>(std::min<i32>(static_cast<i32>(threads), hi - base + 1));

      if (manymap_layout) {
        // Fig. 4b: uniform loads at t' = t - r + qlen.
        block.mem_op(active, shared, 4, [&](u32 lane) {
          const i32 t = base + static_cast<i32>(lane);
          vt_reg[lane] = V[t + shift];
          xt_reg[lane] = X[t + shift];
          ut_reg[lane] = U[t];
          yt_reg[lane] = Y[t];
        });
      } else {
        // Fig. 4a: lane 0 takes the carried tmp and refreshes it from the
        // chunk end; the rest read t-1. Divergent + barrier.
        const i8 next_tmp_v = V[std::min<i32>(base + static_cast<i32>(active) - 1, hi)];
        const i8 next_tmp_x = X[std::min<i32>(base + static_cast<i32>(active) - 1, hi)];
        block.divergent(
            active, [](u32 lane) { return lane == 0; },
            [&](u32 lane) {
              vt_reg[lane] = tmp_v;
              xt_reg[lane] = tmp_x;
            },
            [&](u32 lane) {
              const i32 t = base + static_cast<i32>(lane);
              vt_reg[lane] = V[t - 1];
              xt_reg[lane] = X[t - 1];
            });
        // v/x loads of the else-path plus the u/y loads of every lane.
        block.mem_op(active, shared, 4, [&](u32 lane) {
          const i32 t = base + static_cast<i32>(lane);
          ut_reg[lane] = U[t];
          yt_reg[lane] = Y[t];
        });
        tmp_v = next_tmp_v;
        tmp_x = next_tmp_x;
        block.sync();  // reads must complete before in-place writes
      }

      // Compute + write phase (identical for both forms).
      block.mem_op(active, shared, 4, [&](u32 lane) {
        const i32 t = base + static_cast<i32>(lane);
        const i32 sc = sm(T[t], Qr[qoff + t]);
        const CellUpdate c =
            update_cell(sc, vt_reg[lane], xt_reg[lane], ut_reg[lane], yt_reg[lane], q, qe);
        U[t] = c.u;
        Y[t] = c.y;
        if (manymap_layout) {
          V[t + shift] = c.v;
          X[t + shift] = c.x;
        } else {
          V[t] = c.v;
          X[t] = c.x;
        }
        if (dir_row != nullptr) dir_row[t - row0] = c.dir;
      });
      if (dir_row != nullptr) block.mem_op(active, dirs_shared, 1, [](u32) {});
      if (!manymap_layout) block.sync();  // writes visible before next chunk's reads
    }
    block.sync();  // diagonal barrier (both forms)

    if (banded) {
      if (dir_row != nullptr) {  // zdrop-retired lanes inside the static band
        for (i32 t = row0; t < lo; ++t) dir_row[t - row0] = detail::kDirPruned;
        for (i32 t = hi + 1; t <= btrack.bhi; ++t) dir_row[t - row0] = detail::kDirPruned;
      }
      const i8 v_lo = manymap_layout ? V[lo + shift] : V[lo];
      const i8 v_hi = manymap_layout ? V[hi + shift] : V[hi];
      btrack.after_diagonal(r, U[lo], v_lo, U[hi], v_hi);
      btrack.maybe_shrink([&](i32 t) { return U[t]; },
                          [&](i32 t) { return manymap_layout ? V[t + shift] : V[t]; });
    } else {
      const i8 v_en = manymap_layout ? V[en + shift] : V[en];
      const i8 v_st = manymap_layout ? V[st + shift] : V[st];
      track.after_diagonal(r, U[en], v_en, v_st, U[st]);
    }
  }

  if (banded) {
    out.result = detail::finish_banded(a, ws, btrack);
    out.cost = block.cost();
    return out;
  }

  out.result.cells = static_cast<u64>(tlen) * static_cast<u64>(qlen);
  if (a.mode == AlignMode::kGlobal) {
    out.result.score = track.h_bot;
    out.result.t_end = tlen - 1;
    out.result.q_end = qlen - 1;
  } else {
    out.result.score = track.best.score;
    out.result.t_end = track.best.i;
    out.result.q_end = track.best.j;
  }
  if (a.with_cigar)
    out.result.cigar =
        detail::backtrack(ws.dirs, ws.diag_off, tlen, qlen, out.result.t_end, out.result.q_end);
  out.cost = block.cost();
  return out;
}

GpuAlignResult gpu_align_twopiece(const TwoPieceArgs& a, Layout layout,
                                  const DeviceSpec& spec, u32 threads) {
  GpuAlignResult out;
  MM_REQUIRE(!a.with_cigar, "device two-piece kernel is score-mode only");
  if (a.tlen == 0 || a.qlen == 0) {
    // Mirrors the CPU kernels' degenerate handling (twopiece.cpp).
    if (a.mode == AlignMode::kExtension) return out;
    const i32 n = a.tlen > 0 ? a.tlen : a.qlen;
    if (n == 0) return out;
    out.result.score = -a.params.gap_cost(static_cast<u64>(n));
    out.result.t_end = a.tlen - 1;
    out.result.q_end = a.qlen - 1;
    return out;
  }
  MM_REQUIRE(threads > 0 && threads <= spec.max_block_threads, "bad thread count");
  MM_REQUIRE(a.params.fits_int8(), "scores too large for int8 difference kernels");

  const i32 tlen = a.tlen, qlen = a.qlen;
  const auto& p = a.params;
  const i32 q1 = p.gap_open1, e1 = p.gap_ext1, q2 = p.gap_open2, e2 = p.gap_ext2;
  const bool manymap_layout = layout == Layout::kManymap;

  detail::KernelArena local;
  detail::KernelArena& arena = a.arena != nullptr ? *a.arena : local;
  const detail::TwoPieceWorkspace ws = arena.prepare_twopiece(a, manymap_layout);
  i8* U = ws.U;
  i8* Y1 = ws.Y1;
  i8* Y2 = ws.Y2;
  i8* V = ws.V;
  i8* X1 = ws.X1;
  i8* X2 = ws.X2;
  const u8* T = ws.tp;
  const u8* Qr = ws.qr;

  // Six difference arrays (two per gap piece and direction) plus the
  // sequence tiles; shared memory if they fit, else global (§4.5.2).
  const u64 array_bytes = 6ULL * (static_cast<u64>(std::max(tlen, qlen)) + 1) +
                          static_cast<u64>(tlen) + 2ULL * static_cast<u64>(qlen);
  const bool shared = array_bytes <= spec.shared_mem_per_block;
  const u64 global_bytes = 6ULL * (static_cast<u64>(std::max(tlen, qlen)) + 1) +
                           static_cast<u64>(tlen) + static_cast<u64>(qlen) + 4096;
  Block block(threads, spec);
  block.set_footprint(shared ? array_bytes : 0, global_bytes);
  out.used_shared = shared;

  auto boundary_delta = [&](i32 j) -> i8 {
    if (j == 0) return static_cast<i8>(-p.gap_cost(1));
    return static_cast<i8>(-(p.gap_cost(static_cast<u64>(j) + 1) -
                             p.gap_cost(static_cast<u64>(j))));
  };

  detail::BorderTracker track(tlen, qlen, -p.gap_cost(1));
  // Banded runs confine each diagonal to the BandTracker's live interval;
  // wall injections use the two-piece minimum legal diffs, mirroring the
  // CPU twopiece banded kernels.
  const bool banded = a.band > 0;
  detail::BandTracker btrack(tlen, qlen, a.band, a.zdrop, a.mode, p.match,
                             -p.gap_cost(1));
  const i8 wall_vu = static_cast<i8>(-p.gap_cost(1));  // min legal v/u step
  std::vector<i8> vt_reg(threads), x1_reg(threads), x2_reg(threads);
  std::vector<i8> ut_reg(threads), y1_reg(threads), y2_reg(threads);

  for (i32 r = 0; r < tlen + qlen - 1; ++r) {
    const i32 st = diag_start(r, qlen);
    const i32 en = diag_end(r, tlen);
    const i32 shift = qlen - r;
    const i32 qoff = qlen - 1 - r;
    i32 lo = st, hi = en;
    if (banded) {
      if (!btrack.begin_diagonal(r)) break;
      lo = btrack.lo;
      hi = btrack.hi;
    }

    i8 tmp_v = 0, tmp_x1 = 0, tmp_x2 = 0;  // Fig. 4a carry registers
    if (manymap_layout) {
      if (banded) {
        if (lo == 0) {
          V[shift] = boundary_delta(r);
          X1[shift] = static_cast<i8>(-(q1 + e1));
          X2[shift] = static_cast<i8>(-(q2 + e2));
        } else if (!btrack.lo_adv) {  // wall: lane lo-1 left the band
          V[lo + shift] = wall_vu;
          X1[lo + shift] = static_cast<i8>(-(q1 + e1));
          X2[lo + shift] = static_cast<i8>(-(q2 + e2));
        }  // else: slot lo+shift already holds lane lo-1's genuine values
      } else if (st == 0) {
        V[st + shift] = boundary_delta(r);
        X1[st + shift] = static_cast<i8>(-(q1 + e1));
        X2[st + shift] = static_cast<i8>(-(q2 + e2));
      }
    } else {
      if (banded) {
        if (lo > 0 && btrack.lo_adv) {
          tmp_v = V[lo - 1];
          tmp_x1 = X1[lo - 1];
          tmp_x2 = X2[lo - 1];
        } else {
          tmp_v = lo == 0 ? boundary_delta(r) : wall_vu;
          tmp_x1 = static_cast<i8>(-(q1 + e1));
          tmp_x2 = static_cast<i8>(-(q2 + e2));
        }
      } else if (st == 0) {
        tmp_v = boundary_delta(r);
        tmp_x1 = static_cast<i8>(-(q1 + e1));
        tmp_x2 = static_cast<i8>(-(q2 + e2));
      } else {
        tmp_v = V[st - 1];
        tmp_x1 = X1[st - 1];
        tmp_x2 = X2[st - 1];
      }
    }
    if (banded) {
      if (btrack.hi_adv) {  // lane hi is new: boundary or wall injection
        U[hi] = hi == r ? boundary_delta(r) : wall_vu;
        Y1[hi] = static_cast<i8>(-(q1 + e1));
        Y2[hi] = static_cast<i8>(-(q2 + e2));
      }
    } else if (en == r) {
      U[en] = boundary_delta(r);
      Y1[en] = static_cast<i8>(-(q1 + e1));
      Y2[en] = static_cast<i8>(-(q2 + e2));
    }

    for (i32 base = lo; base <= hi; base += static_cast<i32>(threads)) {
      const u32 active =
          static_cast<u32>(std::min<i32>(static_cast<i32>(threads), hi - base + 1));

      if (manymap_layout) {
        block.mem_op(active, shared, 6, [&](u32 lane) {
          const i32 t = base + static_cast<i32>(lane);
          vt_reg[lane] = V[t + shift];
          x1_reg[lane] = X1[t + shift];
          x2_reg[lane] = X2[t + shift];
          ut_reg[lane] = U[t];
          y1_reg[lane] = Y1[t];
          y2_reg[lane] = Y2[t];
        });
      } else {
        const i32 chunk_end = std::min<i32>(base + static_cast<i32>(active) - 1, hi);
        const i8 next_tmp_v = V[chunk_end];
        const i8 next_tmp_x1 = X1[chunk_end];
        const i8 next_tmp_x2 = X2[chunk_end];
        block.divergent(
            active, [](u32 lane) { return lane == 0; },
            [&](u32 lane) {
              vt_reg[lane] = tmp_v;
              x1_reg[lane] = tmp_x1;
              x2_reg[lane] = tmp_x2;
            },
            [&](u32 lane) {
              const i32 t = base + static_cast<i32>(lane);
              vt_reg[lane] = V[t - 1];
              x1_reg[lane] = X1[t - 1];
              x2_reg[lane] = X2[t - 1];
            });
        block.mem_op(active, shared, 6, [&](u32 lane) {
          const i32 t = base + static_cast<i32>(lane);
          ut_reg[lane] = U[t];
          y1_reg[lane] = Y1[t];
          y2_reg[lane] = Y2[t];
        });
        tmp_v = next_tmp_v;
        tmp_x1 = next_tmp_x1;
        tmp_x2 = next_tmp_x2;
        block.sync();  // reads must complete before in-place writes
      }

      block.mem_op(active, shared, 6, [&](u32 lane) {
        const i32 t = base + static_cast<i32>(lane);
        const i32 sc = p.sub(T[t], Qr[qoff + t]);
        const i8 vt = vt_reg[lane], ut = ut_reg[lane];
        const i32 a1 = x1_reg[lane] + vt, b1 = y1_reg[lane] + ut;
        const i32 a2 = x2_reg[lane] + vt, b2 = y2_reg[lane] + ut;
        const i32 z = std::max({sc, a1, b1, a2, b2});
        U[t] = detail::sat_i8(z - vt);
        const i8 vv = detail::sat_i8(z - ut);
        i32 w = a1 - z + q1;
        X1[manymap_layout ? t + shift : t] = detail::sat_i8((w < 0 ? 0 : w) - q1 - e1);
        w = b1 - z + q1;
        Y1[t] = detail::sat_i8((w < 0 ? 0 : w) - q1 - e1);
        w = a2 - z + q2;
        X2[manymap_layout ? t + shift : t] = detail::sat_i8((w < 0 ? 0 : w) - q2 - e2);
        w = b2 - z + q2;
        Y2[t] = detail::sat_i8((w < 0 ? 0 : w) - q2 - e2);
        V[manymap_layout ? t + shift : t] = vv;
      });
      if (!manymap_layout) block.sync();  // writes visible before next chunk
    }
    block.sync();  // diagonal barrier (both forms)

    if (banded) {
      const i8 v_lo = manymap_layout ? V[lo + shift] : V[lo];
      const i8 v_hi = manymap_layout ? V[hi + shift] : V[hi];
      btrack.after_diagonal(r, U[lo], v_lo, U[hi], v_hi);
      btrack.maybe_shrink([&](i32 t) { return U[t]; },
                          [&](i32 t) { return manymap_layout ? V[t + shift] : V[t]; });
    } else {
      const i8 v_en = manymap_layout ? V[en + shift] : V[en];
      const i8 v_st = manymap_layout ? V[st + shift] : V[st];
      track.after_diagonal(r, U[en], v_en, v_st, U[st]);
    }
  }

  if (banded) {
    // Score-mode banded finish (this kernel never backtracks).
    out.result.cells = btrack.cells;
    out.result.zdropped = btrack.zdropped;
    if (a.mode == AlignMode::kGlobal) {
      out.result.score = btrack.h_hi;
      out.result.t_end = tlen - 1;
      out.result.q_end = qlen - 1;
      out.result.band_hit = btrack.hit(out.result.score);
    } else if (!btrack.best.any) {
      out.result.band_hit = true;  // zdrop retired every border candidate
    } else {
      out.result.score = btrack.best.score;
      out.result.t_end = btrack.best.i;
      out.result.q_end = btrack.best.j;
      out.result.band_hit = btrack.hit(out.result.score);
    }
    out.cost = block.cost();
    return out;
  }

  out.result.cells = static_cast<u64>(tlen) * static_cast<u64>(qlen);
  if (a.mode == AlignMode::kGlobal) {
    out.result.score = track.h_bot;
    out.result.t_end = tlen - 1;
    out.result.q_end = qlen - 1;
  } else {
    out.result.score = track.best.score;
    out.result.t_end = track.best.i;
    out.result.q_end = track.best.j;
  }
  out.cost = block.cost();
  return out;
}

KernelCost gpu_align_cost(i32 tlen, i32 qlen, Layout layout, const DeviceSpec& spec,
                          u32 threads, bool with_cigar, BlockCostModel model) {
  KernelCost cost;
  if (tlen == 0 || qlen == 0) return cost;
  const bool manymap_layout = layout == Layout::kManymap;
  const u64 array_bytes = 4ULL * (static_cast<u64>(std::max(tlen, qlen)) + 1) +
                          static_cast<u64>(tlen) + 2ULL * static_cast<u64>(qlen);
  const bool shared = array_bytes <= spec.shared_mem_per_block;
  cost.shared_bytes = shared ? array_bytes : 0;
  cost.global_bytes = gpu_kernel_global_bytes(tlen, qlen, with_cigar);

  const u32 warp = spec.warp_size;
  auto alu = [&](u32 active) {
    const u64 warps = (active + warp - 1) / warp;
    cost.warp_instructions += warps;
    cost.cycles += warps * model.alu_cycles;
  };
  auto mem = [&](u32 active, bool in_shared, u32 ops) {
    alu(active);
    const u64 warps = (active + warp - 1) / warp;
    cost.cycles += warps * ops * (in_shared ? model.shared_cycles : model.global_cycles);
  };
  auto sync = [&] {
    ++cost.syncs;
    cost.cycles += model.sync_cycles;
  };

  for (i32 r = 0; r < tlen + qlen - 1; ++r) {
    const i32 st = diag_start(r, qlen);
    const i32 en = diag_end(r, tlen);
    for (i32 base = st; base <= en; base += static_cast<i32>(threads)) {
      const u32 active =
          static_cast<u32>(std::min<i32>(static_cast<i32>(threads), en - base + 1));
      if (manymap_layout) {
        mem(active, shared, 4);  // read phase
      } else {
        ++cost.divergent_branches;  // Fig. 4a tid==0 branch
        cost.cycles += model.branch_cycles;
        alu(active);                     // then-path (lane 0)
        if (active >= 2) alu(active);    // else-path
        mem(active, shared, 4);          // v/x (else-path) + u/y reads
        sync();                          // reads before in-place writes
      }
      mem(active, shared, 4);  // compute + write phase
      if (with_cigar) mem(active, false, 1);
      if (!manymap_layout) sync();  // writes visible before next chunk
    }
    sync();  // diagonal barrier
  }
  return cost;
}

}  // namespace simt
}  // namespace manymap
