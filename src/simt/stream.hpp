// Stream-level driver: runs a batch of pair alignments through the device
// model with CUDA-stream concurrency and the per-stream memory pool —
// the top-level GPU path used by the Figure 7/8 benches.
#pragma once

#include <vector>

#include "simt/kernels.hpp"
#include "simt/memory_pool.hpp"

namespace manymap {
namespace simt {

struct SequencePair {
  std::vector<u8> target;
  std::vector<u8> query;
};

struct BatchConfig {
  Layout layout = Layout::kManymap;
  AlignMode mode = AlignMode::kGlobal;
  bool with_cigar = false;
  u32 threads_per_block = 512;
  u32 num_streams = 128;
};

struct BatchReport {
  std::vector<AlignResult> results;   ///< one per pair (order preserved)
  double device_seconds = 0.0;        ///< simulated device wall time
  u32 achieved_concurrency = 0;
  u64 kernels_on_gpu = 0;
  u64 fallbacks_to_cpu = 0;           ///< pool-exhausted pairs (§4.5.2)
  u64 stream_errors = 0;              ///< launch failures retried on the CPU
  u64 total_cells = 0;

  double gcups() const {
    return device_seconds > 0
               ? static_cast<double>(total_cells) / device_seconds / 1e9
               : 0.0;
  }
};

/// Align all pairs on the device model. Pairs whose memory needs exceed
/// the per-stream pool partition are still *computed* (on the CPU path,
/// as manymap does) but excluded from device timing.
BatchReport run_alignment_batch(const Device& device, const std::vector<SequencePair>& pairs,
                                const ScoreParams& params, const BatchConfig& config);

}  // namespace simt
}  // namespace manymap
