// GPU base-level alignment kernels on the SIMT block interpreter, in both
// published forms:
//   Fig. 4a (minimap2 form):  if (tid == 0) { xt = tmp; tmp = X[chunk_end]; }
//                             else xt = X[t-1];  __syncthreads();
//     -> a divergent branch plus two barriers per chunk per diagonal.
//   Fig. 4b (manymap form):   xt = X[t - r + qlen];
//     -> uniform loads; one barrier per diagonal.
// The interpreter executes the lane lambdas, so scores/CIGARs are bit-
// exact with the CPU kernels (asserted by tests), while cost counters
// expose the divergence/synchronization gap the paper exploits.
#pragma once

#include "align/kernel_api.hpp"
#include "align/twopiece.hpp"
#include "simt/block.hpp"

namespace manymap {
namespace simt {

struct GpuAlignResult {
  AlignResult result;
  KernelCost cost;
  bool used_shared = false;  ///< DP arrays fit in shared memory
};

/// Run one pair alignment as a single-block kernel with `threads` lanes.
GpuAlignResult gpu_align(const DiffArgs& args, Layout layout, const DeviceSpec& spec,
                         u32 threads);

/// Memory a kernel needs for this problem (drives shared/global placement
/// and stream concurrency).
u64 gpu_kernel_global_bytes(i32 tlen, i32 qlen, bool with_cigar);

/// Analytic cost of gpu_align for the same problem, without executing the
/// lanes — exact cycle/sync/divergence counts (asserted equal to the
/// interpreter by tests). Used by the benches for large workloads.
KernelCost gpu_align_cost(i32 tlen, i32 qlen, Layout layout, const DeviceSpec& spec,
                          u32 threads, bool with_cigar, BlockCostModel model = {});

/// Two-piece gap model on the device, score mode only (the offload
/// subsystem keeps path mode on the host, so the device never carries the
/// quadratic dirs area; args.with_cigar must be false). Six difference
/// arrays instead of four, otherwise the same two kernel forms as
/// gpu_align; scores and end cells are bit-exact with the CPU two-piece
/// kernels (asserted by tests and the `gpu` fuzzer family).
GpuAlignResult gpu_align_twopiece(const TwoPieceArgs& args, Layout layout,
                                  const DeviceSpec& spec, u32 threads);

}  // namespace simt
}  // namespace manymap
