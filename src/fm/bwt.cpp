#include "fm/bwt.hpp"

#include <array>

namespace manymap {

BwtResult build_bwt(std::span<const u8> text, std::span<const u32> sa) {
  const std::size_t n = text.size();
  MM_REQUIRE(sa.size() == n, "suffix array size mismatch");
  BwtResult r;
  r.bwt.resize(n + 1);
  // Row 0 is the sentinel suffix; its preceding char is text[n-1].
  r.bwt[0] = n > 0 ? text[n - 1] : kBwtSentinel;
  for (std::size_t i = 0; i < n; ++i) {
    const u32 s = sa[i];
    if (s == 0) {
      r.bwt[i + 1] = kBwtSentinel;  // preceding char is the sentinel
      r.primary = static_cast<u32>(i + 1);
    } else {
      r.bwt[i + 1] = text[s - 1];
    }
  }
  if (n == 0) r.primary = 0;
  return r;
}

std::vector<u8> invert_bwt(const BwtResult& r) {
  const std::size_t m = r.bwt.size();  // n+1 rows
  // LF mapping: count occurrences of each symbol before row i.
  std::array<u64, 7> totals{};
  for (u8 c : r.bwt) ++totals[c];
  std::array<u64, 7> starts{};
  // sentinel (5) is lexicographically smallest: order sentinel, 0..4
  starts[kBwtSentinel] = 0;
  u64 acc = totals[kBwtSentinel];
  for (u8 c = 0; c <= 4; ++c) {
    starts[c] = acc;
    acc += totals[c];
  }
  std::vector<u64> occ(m);
  {
    std::array<u64, 7> running{};
    for (std::size_t i = 0; i < m; ++i) {
      occ[i] = running[r.bwt[i]];
      ++running[r.bwt[i]];
    }
  }
  std::vector<u8> text(m - 1);
  // Walk the LF mapping backwards starting from the sentinel rotation
  // (row 0, whose last column holds text[n-1]).
  u64 row = 0;
  for (std::size_t i = m - 1; i-- > 0;) {
    const u8 c = r.bwt[row];
    MM_REQUIRE(c != kBwtSentinel, "unexpected sentinel during inversion");
    text[i] = c;
    row = starts[c] + occ[row];
  }
  return text;
}

}  // namespace manymap
