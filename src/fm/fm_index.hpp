// FM-index (Ferragina & Manzini) over a DNA text: backward search with
// sampled occurrence checkpoints and a sampled suffix array for locate.
// This is the seeding substrate of the BWA-MEM-like baseline (short-read
// style exact-match seeding the paper compares against in Table 5).
#pragma once

#include <span>
#include <vector>

#include "fm/bwt.hpp"
#include "fm/suffix_array.hpp"

namespace manymap {

class FmIndex {
 public:
  /// Build over `text` (codes 0..4; N is remapped to A for indexing — the
  /// usual trick, since exact seeds over N are meaningless anyway).
  explicit FmIndex(std::span<const u8> text);

  std::size_t text_length() const { return n_; }

  /// Backward-search interval of rows whose suffixes start with `pattern`.
  /// Empty interval when absent.
  SaInterval count(std::span<const u8> pattern) const;

  /// Extend an interval by prepending symbol c (one backward-search step).
  SaInterval extend_left(const SaInterval& ival, u8 c) const;

  /// Initial interval covering all rows.
  SaInterval all_rows() const { return {0, static_cast<u32>(n_ + 1)}; }

  /// Text positions for the rows of `ival` (at most max_hits of them).
  std::vector<u32> locate(const SaInterval& ival, u32 max_hits) const;

  /// Longest suffix of query[0..end] that occurs in the text, walking
  /// backward from `end` (inclusive). Returns match length and interval.
  struct BackwardMatch {
    u32 length = 0;
    SaInterval interval{};
  };
  BackwardMatch max_backward_match(std::span<const u8> query, u32 end, u32 min_interval = 1) const;

  u64 memory_bytes() const;

 private:
  std::size_t n_ = 0;
  std::vector<u8> bwt_;          ///< n+1 symbols (0..4 + sentinel 5)
  u32 primary_ = 0;
  std::array<u64, 6> c_{};       ///< C[c]: rows with first symbol < c
  static constexpr u32 kOccRate = 64;
  std::vector<std::array<u32, 5>> occ_checkpoints_;
  static constexpr u32 kSaRate = 8;
  std::vector<u32> sa_samples_;  ///< sa value for every kSaRate-th row
  std::vector<u8> sa_sampled_;   ///< 1 if row has a sample

  u32 occ(u8 c, u32 row) const;  ///< occurrences of c in bwt[0, row)
  u32 lf(u32 row) const;
};

}  // namespace manymap
