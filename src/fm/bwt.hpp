// Burrows–Wheeler transform over DNA codes with an implicit sentinel
// (Burrows & Wheeler 1994) — the compressed-index backbone for the FM
// index.
#pragma once

#include <span>
#include <vector>

#include "base/common.hpp"

namespace manymap {

/// Sentinel symbol in the BWT output (text symbols are 0..4).
inline constexpr u8 kBwtSentinel = 5;

struct BwtResult {
  std::vector<u8> bwt;     ///< length n+1 (includes the sentinel symbol)
  u32 primary = 0;         ///< row index of the sentinel in the BWT
};

/// BWT of `text` given its suffix array (sa over n suffixes; the sentinel
/// suffix is implicit and sorts first).
BwtResult build_bwt(std::span<const u8> text, std::span<const u32> sa);

/// Invert a BWT back to the original text (tests / sanity checks).
std::vector<u8> invert_bwt(const BwtResult& bwt);

}  // namespace manymap
