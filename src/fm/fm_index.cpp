#include "fm/fm_index.hpp"

#include <algorithm>

namespace manymap {

FmIndex::FmIndex(std::span<const u8> text) {
  n_ = text.size();
  std::vector<u8> clean(text.begin(), text.end());
  for (auto& c : clean) {
    if (c > 3) c = 0;  // remap N to A: exact seeds across N are meaningless
  }
  const auto sa = build_suffix_array(clean);
  auto bwt = build_bwt(clean, sa);
  bwt_ = std::move(bwt.bwt);
  primary_ = bwt.primary;

  // C array: sentinel sorts first, then symbols 0..4.
  std::array<u64, 6> totals{};
  for (u8 c : bwt_)
    if (c != kBwtSentinel) ++totals[c];
  u64 acc = 1;  // the sentinel row
  for (u8 c = 0; c < 6; ++c) {
    c_[c] = acc;
    acc += totals[c];
  }

  // Occurrence checkpoints: slot s holds counts in bwt[0, s*kOccRate).
  const u32 rows = static_cast<u32>(bwt_.size());
  occ_checkpoints_.resize(rows / kOccRate + 1);
  std::array<u32, 5> running{};
  for (u32 r = 0; r < rows; ++r) {
    if (r % kOccRate == 0) occ_checkpoints_[r / kOccRate] = running;
    if (bwt_[r] < 5) ++running[bwt_[r]];
  }

  // Row-sampled suffix array: row 0 is the empty suffix (position n).
  sa_samples_.resize(rows / kSaRate + 1);
  for (u32 r = 0; r < rows; r += kSaRate)
    sa_samples_[r / kSaRate] = (r == 0) ? static_cast<u32>(n_) : sa[r - 1];
}

u32 FmIndex::occ(u8 c, u32 row) const {
  u32 count = occ_checkpoints_[row / kOccRate][c];
  for (u32 r = row / kOccRate * kOccRate; r < row; ++r)
    if (bwt_[r] == c) ++count;
  return count;
}

u32 FmIndex::lf(u32 row) const {
  const u8 c = bwt_[row];
  MM_REQUIRE(c != kBwtSentinel, "LF past the text start");
  return static_cast<u32>(c_[c] + occ(c, row));
}

SaInterval FmIndex::extend_left(const SaInterval& ival, u8 c) const {
  if (c > 3) return {0, 0};  // N never matches
  SaInterval out;
  out.lo = static_cast<u32>(c_[c] + occ(c, ival.lo));
  out.hi = static_cast<u32>(c_[c] + occ(c, ival.hi));
  return out;
}

SaInterval FmIndex::count(std::span<const u8> pattern) const {
  SaInterval ival = all_rows();
  for (std::size_t i = pattern.size(); i-- > 0;) {
    ival = extend_left(ival, pattern[i]);
    if (ival.empty()) return ival;
  }
  return ival;
}

std::vector<u32> FmIndex::locate(const SaInterval& ival, u32 max_hits) const {
  std::vector<u32> hits;
  const u32 n_hits = std::min<u32>(ival.size(), max_hits);
  for (u32 i = 0; i < n_hits; ++i) {
    u32 row = ival.lo + i;
    u32 steps = 0;
    for (;;) {
      if (row % kSaRate == 0) {
        hits.push_back(sa_samples_[row / kSaRate] + steps);
        break;
      }
      if (bwt_[row] == kBwtSentinel) {
        hits.push_back(steps);  // suffix starts at position 0
        break;
      }
      row = lf(row);
      ++steps;
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

FmIndex::BackwardMatch FmIndex::max_backward_match(std::span<const u8> query, u32 end,
                                                   u32 min_interval) const {
  BackwardMatch best;
  SaInterval ival = all_rows();
  u32 len = 0;
  for (u32 i = end + 1; i-- > 0;) {
    const SaInterval next = extend_left(ival, query[i]);
    if (next.size() < min_interval) break;
    ival = next;
    ++len;
    best = {len, ival};
  }
  return best;
}

u64 FmIndex::memory_bytes() const {
  return bwt_.size() + occ_checkpoints_.size() * sizeof(occ_checkpoints_[0]) +
         sa_samples_.size() * sizeof(u32);
}

}  // namespace manymap
