// Suffix array construction (prefix-doubling, O(n log^2 n)) over DNA code
// sequences with an implicit sentinel. Substrate for the BWT/FM-index used
// by the BWA-MEM-like and BLASR-like baseline aligners (Table 5).
#pragma once

#include <span>
#include <vector>

#include "base/common.hpp"

namespace manymap {

/// Build the suffix array of `text` (values 0..4). The implicit sentinel
/// (lexicographically smallest) sorts before every symbol; sa[i] is the
/// start of the i-th smallest suffix, i in [0, n).
std::vector<u32> build_suffix_array(std::span<const u8> text);

/// O(n^2 log n) reference implementation for tests.
std::vector<u32> build_suffix_array_naive(std::span<const u8> text);

/// Binary-search the interval of suffixes prefixed by `pattern`.
/// Returns [lo, hi) into `sa`; empty interval when absent.
struct SaInterval {
  u32 lo = 0;
  u32 hi = 0;
  u32 size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};
SaInterval sa_search(std::span<const u8> text, std::span<const u32> sa,
                     std::span<const u8> pattern);

}  // namespace manymap
