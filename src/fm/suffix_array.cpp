#include "fm/suffix_array.hpp"

#include <algorithm>
#include <numeric>

namespace manymap {

std::vector<u32> build_suffix_array(std::span<const u8> text) {
  const std::size_t n = text.size();
  std::vector<u32> sa(n), rank(n), tmp(n);
  std::iota(sa.begin(), sa.end(), 0u);
  for (std::size_t i = 0; i < n; ++i) rank[i] = text[i] + 1;  // 0 reserved for sentinel

  for (std::size_t k = 1;; k <<= 1) {
    auto key = [&](u32 i) {
      const u32 second = i + k < n ? rank[i + k] + 1 : 0;
      return (static_cast<u64>(rank[i] + 1) << 32) | second;
    };
    std::sort(sa.begin(), sa.end(), [&](u32 a, u32 b) { return key(a) < key(b); });
    if (n == 0) break;
    tmp[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i)
      tmp[sa[i]] = tmp[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    rank = tmp;
    if (rank[sa[n - 1]] == n - 1) break;  // all ranks distinct
  }
  return sa;
}

std::vector<u32> build_suffix_array_naive(std::span<const u8> text) {
  const std::size_t n = text.size();
  std::vector<u32> sa(n);
  std::iota(sa.begin(), sa.end(), 0u);
  std::sort(sa.begin(), sa.end(), [&](u32 a, u32 b) {
    const std::size_t la = n - a, lb = n - b;
    const std::size_t m = std::min(la, lb);
    for (std::size_t i = 0; i < m; ++i) {
      if (text[a + i] != text[b + i]) return text[a + i] < text[b + i];
    }
    return la < lb;  // shorter suffix (sentinel) first
  });
  return sa;
}

namespace {

/// Compare pattern against the suffix starting at `pos`:
/// -1 pattern <, 0 prefix match, +1 pattern >.
int cmp_pattern(std::span<const u8> text, u32 pos, std::span<const u8> pattern) {
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pos + i >= n) return 1;  // suffix exhausted: pattern is greater
    if (pattern[i] != text[pos + i]) return pattern[i] < text[pos + i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

SaInterval sa_search(std::span<const u8> text, std::span<const u32> sa,
                     std::span<const u8> pattern) {
  // lo: first suffix >= pattern; hi: first suffix with prefix > pattern.
  u32 lo = 0, hi = static_cast<u32>(sa.size());
  {
    u32 a = 0, b = static_cast<u32>(sa.size());
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (cmp_pattern(text, sa[mid], pattern) > 0)
        a = mid + 1;
      else
        b = mid;
    }
    lo = a;
  }
  {
    u32 a = lo, b = static_cast<u32>(sa.size());
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (cmp_pattern(text, sa[mid], pattern) >= 0)
        a = mid + 1;
      else
        b = mid;
    }
    hi = a;
  }
  return {lo, hi};
}

}  // namespace manymap
