// The two mapping pipelines of §4.4.4.
//
// Minimap2Pipeline — minimap2's scheme: two pipeline slots, each running
//   load -> multi-threaded compute -> output for alternate batches, so the
//   compute of one slot overlaps the I/O of the other. A single serial I/O
//   step per slot means input and output of *different* batches cannot
//   overlap each other.
//
// ManymapPipeline — manymap's scheme: a dedicated input thread, a worker
//   pool, and a dedicated output thread connected by bounded queues, so
//   input, compute and output all overlap; batches are optionally sorted
//   longest-first before computing.
#pragma once

#include <functional>
#include <string>

#include "pipeline/batch.hpp"

namespace manymap {

/// Per-read computation producing an output record (e.g. a PAF line).
using ComputeFn = std::function<std::string(const Sequence&)>;
/// Receives the output records of one batch, in read order.
using OutputSink = std::function<void(u64 batch_id, const std::vector<std::string>&)>;

struct PipelineOptions {
  u32 compute_threads = 2;
  bool sort_longest_first = false;  ///< manymap load balancing
  std::size_t queue_capacity = 2;
};

struct PipelineStats {
  u64 batches = 0;
  u64 reads = 0;
  double wall_seconds = 0.0;
};

/// Run the two-slot minimap2-style pipeline to completion.
PipelineStats run_minimap2_pipeline(const BatchSource& source, const ComputeFn& compute,
                                    const OutputSink& sink, const PipelineOptions& opt);

/// Run the manymap pipeline (dedicated I/O threads) to completion.
PipelineStats run_manymap_pipeline(const BatchSource& source, const ComputeFn& compute,
                                   const OutputSink& sink, const PipelineOptions& opt);

}  // namespace manymap
