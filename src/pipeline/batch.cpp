#include "pipeline/batch.hpp"

#include <algorithm>
#include <memory>

namespace manymap {

std::vector<ReadBatch> make_batches(std::vector<Sequence> reads, u64 max_bases) {
  std::vector<ReadBatch> batches;
  ReadBatch cur;
  u64 bases = 0;
  for (auto& r : reads) {
    if (!cur.reads.empty() && bases + r.size() > max_bases) {
      cur.id = batches.size();
      batches.push_back(std::move(cur));
      cur = ReadBatch{};
      bases = 0;
    }
    bases += r.size();
    cur.reads.push_back(std::move(r));
  }
  if (!cur.reads.empty()) {
    cur.id = batches.size();
    batches.push_back(std::move(cur));
  }
  return batches;
}

void sort_longest_first(ReadBatch& batch) {
  std::stable_sort(batch.reads.begin(), batch.reads.end(),
                   [](const Sequence& a, const Sequence& b) { return a.size() > b.size(); });
}

double list_schedule_makespan(const std::vector<double>& costs, u32 workers) {
  MM_REQUIRE(workers > 0, "need at least one worker");
  std::vector<double> busy(workers, 0.0);
  for (const double c : costs) {
    auto it = std::min_element(busy.begin(), busy.end());
    *it += c;
  }
  return *std::max_element(busy.begin(), busy.end());
}

BatchSource vector_source(std::vector<ReadBatch> batches) {
  auto state = std::make_shared<std::pair<std::vector<ReadBatch>, std::size_t>>(
      std::move(batches), 0);
  return [state]() -> std::optional<ReadBatch> {
    if (state->second >= state->first.size()) return std::nullopt;
    return std::move(state->first[state->second++]);
  };
}

}  // namespace manymap
