#include "pipeline/pipeline.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "base/timer.hpp"
#include "pipeline/queue.hpp"

namespace manymap {

namespace {

/// Compute all reads of a batch with a small worker pool; results keep
/// read order.
std::vector<std::string> compute_batch(const ReadBatch& batch, const ComputeFn& compute,
                                       u32 threads) {
  std::vector<std::string> results(batch.reads.size());
  if (threads <= 1 || batch.reads.size() <= 1) {
    for (std::size_t i = 0; i < batch.reads.size(); ++i) results[i] = compute(batch.reads[i]);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= batch.reads.size()) return;
      results[i] = compute(batch.reads[i]);
    }
  };
  std::vector<std::thread> pool;
  const u32 n = std::min<u32>(threads, static_cast<u32>(batch.reads.size()));
  pool.reserve(n);
  for (u32 t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

/// Serializes sink calls into batch-id order regardless of finish order.
class OrderedSink {
 public:
  explicit OrderedSink(const OutputSink& sink) : sink_(sink) {}

  void deliver(u64 batch_id, std::vector<std::string> lines) {
    std::lock_guard lock(mu_);
    pending_.emplace(batch_id, std::move(lines));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      sink_(pending_.begin()->first, pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  const OutputSink& sink_;
  std::mutex mu_;
  std::map<u64, std::vector<std::string>> pending_;
  u64 next_ = 0;
};

}  // namespace

PipelineStats run_minimap2_pipeline(const BatchSource& source, const ComputeFn& compute,
                                    const OutputSink& sink, const PipelineOptions& opt) {
  PipelineStats stats;
  WallTimer wall;
  // Two slots alternate batches. The source is serial: guard it.
  std::mutex source_mu;
  OrderedSink ordered(sink);
  std::atomic<u64> batches{0}, reads{0};

  auto slot = [&] {
    for (;;) {
      std::optional<ReadBatch> batch;
      {
        std::lock_guard lock(source_mu);  // step 1: load (serial)
        batch = source();
      }
      if (!batch) return;
      auto lines = compute_batch(*batch, compute, opt.compute_threads);  // step 2
      reads += batch->reads.size();
      ++batches;
      ordered.deliver(batch->id, std::move(lines));  // step 3: output
    }
  };
  std::thread a(slot), b(slot);
  a.join();
  b.join();
  stats.batches = batches;
  stats.reads = reads;
  stats.wall_seconds = wall.seconds();
  return stats;
}

PipelineStats run_manymap_pipeline(const BatchSource& source, const ComputeFn& compute,
                                   const OutputSink& sink, const PipelineOptions& opt) {
  PipelineStats stats;
  WallTimer wall;
  BoundedQueue<ReadBatch> in_q(opt.queue_capacity);
  BoundedQueue<std::pair<u64, std::vector<std::string>>> out_q(opt.queue_capacity);

  std::thread input([&] {  // dedicated input thread
    for (;;) {
      auto batch = source();
      if (!batch) break;
      if (opt.sort_longest_first) sort_longest_first(*batch);
      if (!in_q.push(std::move(*batch))) break;
    }
    in_q.close();
  });

  std::atomic<u64> batches{0}, reads{0};
  std::thread worker([&] {  // compute stage (internally multi-threaded)
    for (;;) {
      auto batch = in_q.pop();
      if (!batch) break;
      auto lines = compute_batch(*batch, compute, opt.compute_threads);
      reads += batch->reads.size();
      ++batches;
      out_q.push({batch->id, std::move(lines)});
    }
    out_q.close();
  });

  std::thread output([&] {  // dedicated output thread
    OrderedSink ordered(sink);
    for (;;) {
      auto item = out_q.pop();
      if (!item) break;
      ordered.deliver(item->first, std::move(item->second));
    }
  });

  input.join();
  worker.join();
  output.join();
  stats.batches = batches;
  stats.reads = reads;
  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace manymap
