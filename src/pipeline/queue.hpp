// Bounded MPMC queue used to connect pipeline stages.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "base/common.hpp"

namespace manymap {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MM_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  /// Blocks while full. Returns false if the queue was closed; on failure
  /// `item` is left untouched so the caller can still resolve it (e.g. a
  /// close() racing a blocking submit must not eat the request's promise).
  bool push(T&& item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Copying overload for lvalue arguments (copyable T only).
  bool push(const T& item) { return push(T(item)); }

  /// Non-blocking push for admission control: fails instead of waiting.
  /// Returns false when the queue is full or closed; on failure `item` is
  /// left untouched so the caller can respond (e.g. with REJECTED).
  bool try_push(T&& item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Deadline-aware pop: waits at most `timeout`. Empty optional means
  /// either the timeout expired with the queue still empty, or
  /// closed-and-drained — disambiguate with closed() (no push can succeed
  /// after close, so closed()+nullopt implies drained for good).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes; consumers drain the remainder then see nullopt.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace manymap
