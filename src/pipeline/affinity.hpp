// Thread-affinity strategies (paper §4.4.3). The assignment functions are
// pure (and exhaustively unit-tested); applying them to live threads is
// best-effort via pthread_setaffinity_np.
//
//   compact   — thread i -> core floor(i/k): fewest cores, heavy sharing.
//   scatter   — thread i -> core i % P: spread across all cores.
//   optimized — manymap's strategy: scatter over cores 0..P-2, reserving
//               the last core exclusively for I/O threads.
#pragma once

#include <thread>
#include <vector>

#include "base/common.hpp"

namespace manymap {

enum class AffinityStrategy { kCompact, kScatter, kOptimized };

const char* to_string(AffinityStrategy s);

struct AffinityConfig {
  u32 cores = 64;            ///< P
  u32 threads_per_core = 4;  ///< k
};

/// Core for a compute thread under the given strategy.
u32 assign_core(AffinityStrategy s, u32 thread_id, const AffinityConfig& cfg);

/// Core reserved for I/O threads (optimized strategy pins I/O to the last
/// core; the others just use core 0's natural OS placement).
u32 io_core(AffinityStrategy s, const AffinityConfig& cfg);

/// Number of distinct cores used by `threads` compute threads.
u32 cores_used(AffinityStrategy s, u32 threads, const AffinityConfig& cfg);

/// Max number of compute threads sharing one core.
u32 max_threads_per_core(AffinityStrategy s, u32 threads, const AffinityConfig& cfg);

/// Best-effort pinning of the calling thread to a core (no-op failure is
/// tolerated: the container may expose fewer cores than the model).
bool pin_current_thread(u32 core);

}  // namespace manymap
