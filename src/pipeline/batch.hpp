// Read batching for the mapping pipelines (§4.4.4): queries are processed
// in batches; manymap additionally sorts each batch longest-first so slow
// long reads start early and threads finish together.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sequence/sequence.hpp"

namespace manymap {

struct ReadBatch {
  std::vector<Sequence> reads;
  u64 id = 0;

  u64 total_bases() const {
    u64 n = 0;
    for (const auto& r : reads) n += r.size();
    return n;
  }
};

/// Split reads into batches of at most `max_bases` (at least one read per
/// batch).
std::vector<ReadBatch> make_batches(std::vector<Sequence> reads, u64 max_bases);

/// Longest-first ordering (manymap's load-balancing, §4.4.4).
void sort_longest_first(ReadBatch& batch);

/// Deterministic makespan of greedy list scheduling: reads are assigned in
/// the given order to the earliest-free of `workers` identical workers.
/// Models the end-of-batch straggler effect that longest-first sorting
/// removes (costs are usually read lengths or measured per-read times).
double list_schedule_makespan(const std::vector<double>& costs, u32 workers);

/// Pull-style batch source used by the pipelines.
using BatchSource = std::function<std::optional<ReadBatch>()>;

/// Make a source that yields the given batches in order (thread-safe is
/// not required: only the input stage calls it).
BatchSource vector_source(std::vector<ReadBatch> batches);

}  // namespace manymap
