#include "pipeline/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <map>

namespace manymap {

const char* to_string(AffinityStrategy s) {
  switch (s) {
    case AffinityStrategy::kCompact: return "compact";
    case AffinityStrategy::kScatter: return "scatter";
    case AffinityStrategy::kOptimized: return "optimized";
  }
  return "?";
}

u32 assign_core(AffinityStrategy s, u32 thread_id, const AffinityConfig& cfg) {
  MM_REQUIRE(cfg.cores > 0, "no cores");
  switch (s) {
    case AffinityStrategy::kCompact:
      return std::min(thread_id / cfg.threads_per_core, cfg.cores - 1);
    case AffinityStrategy::kScatter:
      return thread_id % cfg.cores;
    case AffinityStrategy::kOptimized: {
      // Reserve the last core for I/O when more than one core exists.
      const u32 usable = cfg.cores > 1 ? cfg.cores - 1 : 1;
      return thread_id % usable;
    }
  }
  return 0;
}

u32 io_core(AffinityStrategy s, const AffinityConfig& cfg) {
  if (s == AffinityStrategy::kOptimized && cfg.cores > 1) return cfg.cores - 1;
  return 0;
}

u32 cores_used(AffinityStrategy s, u32 threads, const AffinityConfig& cfg) {
  std::map<u32, u32> seen;
  for (u32 t = 0; t < threads; ++t) ++seen[assign_core(s, t, cfg)];
  return static_cast<u32>(seen.size());
}

u32 max_threads_per_core(AffinityStrategy s, u32 threads, const AffinityConfig& cfg) {
  std::map<u32, u32> seen;
  for (u32 t = 0; t < threads; ++t) ++seen[assign_core(s, t, cfg)];
  u32 worst = 0;
  for (const auto& [core, cnt] : seen) worst = std::max(worst, cnt);
  return worst;
}

bool pin_current_thread(u32 core) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
}

}  // namespace manymap
